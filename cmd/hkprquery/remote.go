package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"hkpr"
)

// remoteConfig is the -server client mode: instead of loading a graph
// locally, each seed is queried against a running hkprserver's (or
// hkprrouter's) /cluster endpoint with bounded retry.  -server accepts a
// comma-separated endpoint list: a 5xx response or a transport failure
// (connection refused among them) fails the query over to the next endpoint
// immediately, and only when every endpoint is unavailable does the client
// back off — with jittered exponential delay, honoring the smallest
// Retry-After drain estimate any endpoint advertised.  The -retries budget
// bounds the full passes over the endpoint list per seed.
type remoteConfig struct {
	servers []string
	method  string
	epsRel  float64
	topK    int
	retries int
	base    time.Duration
	max     time.Duration
	rngSeed uint64

	// preferred is the index of the endpoint that last answered; each query
	// starts there so the client sticks with a known-good endpoint instead of
	// re-probing dead ones (runRemote is sequential, so no locking).
	preferred int
}

// remoteCluster mirrors the hkprserver /cluster response fields the client
// renders; unknown fields are ignored so the two binaries can evolve apart.
type remoteCluster struct {
	Seed        int64   `json:"seed"`
	Method      string  `json:"method"`
	Cluster     []int64 `json:"cluster"`
	Size        int     `json:"size"`
	Conductance float64 `json:"conductance"`
	Cached      bool    `json:"cached"`
	Coalesced   bool    `json:"coalesced"`
	Epoch       uint64  `json:"epoch"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	Degraded    string  `json:"degraded"`
	Error       string  `json:"error"`
}

// backoffDelay computes the wait before retry attempt (1-based), doubling
// from cfg.base with multiplicative jitter in [0.5, 1.5) so a fleet of
// clients shed together does not retry together.  A Retry-After hint from the
// server raises the wait to at least the advertised drain estimate.  The
// result is clamped to cfg.max.
func backoffDelay(cfg *remoteConfig, attempt int, retryAfter time.Duration, rng *rand.Rand) time.Duration {
	d := cfg.base << (attempt - 1)
	if d <= 0 || d > cfg.max { // shift overflow or past the cap
		d = cfg.max
	}
	d = time.Duration(float64(d) * (0.5 + rng.Float64()))
	if retryAfter > d {
		d = retryAfter
	}
	if d > cfg.max {
		d = cfg.max
	}
	return d
}

// clusterURL renders one endpoint's /cluster URL for a seed.
func clusterURL(cfg *remoteConfig, endpoint string, seed hkpr.NodeID) string {
	return fmt.Sprintf("%s/cluster?seed=%d&method=%s&eps=%s",
		strings.TrimSuffix(endpoint, "/"), seed,
		url.QueryEscape(cfg.method), url.QueryEscape(strconv.FormatFloat(cfg.epsRel, 'g', -1, 64)))
}

// queryRemote fetches one seed's cluster with failover and retry.  Each
// attempt is one pass over the endpoint list starting at the last endpoint
// that answered: a 5xx or transport failure moves on to the next endpoint
// without waiting, a 4xx is terminal, and only when the whole pass comes up
// empty does the client back off before the next one.  Only transient
// outcomes consume the -retries budget.
func queryRemote(client *http.Client, cfg *remoteConfig, seed hkpr.NodeID, rng *rand.Rand, out io.Writer) (*remoteCluster, error) {
	var lastErr error
	for attempt := 1; ; attempt++ {
		// The smallest Retry-After hint any shedding endpoint returned this
		// pass: the soonest anyone expects to have drained.
		var retryAfter time.Duration
		for i := 0; i < len(cfg.servers); i++ {
			ep := (cfg.preferred + i) % len(cfg.servers)
			rc, ra, err := fetchCluster(client, clusterURL(cfg, cfg.servers[ep], seed))
			if err == nil {
				cfg.preferred = ep
				return rc, nil
			}
			lastErr = err
			if ra < 0 {
				return nil, fmt.Errorf("seed %d: %w", seed, err)
			}
			if ra > 0 && (retryAfter == 0 || ra < retryAfter) {
				retryAfter = ra
			}
			if i+1 < len(cfg.servers) {
				fmt.Fprintf(out, "seed %d: %s unavailable (%v), failing over\n", seed, cfg.servers[ep], err)
			}
		}
		if attempt > cfg.retries {
			return nil, fmt.Errorf("seed %d: %d attempts exhausted: %w", seed, attempt, lastErr)
		}
		d := backoffDelay(cfg, attempt, retryAfter, rng)
		fmt.Fprintf(out, "seed %d: overloaded (attempt %d/%d), backing off %v\n", seed, attempt, cfg.retries+1, d.Round(time.Millisecond))
		time.Sleep(d)
	}
}

// fetchCluster performs one attempt.  A negative retryAfter marks the error
// terminal; zero or positive means retryable with that server hint (zero =
// none given).
func fetchCluster(client *http.Client, u string) (*remoteCluster, time.Duration, error) {
	resp, err := client.Get(u)
	if err != nil {
		return nil, 0, err // transport failure: retryable, no hint
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, 0, err
	}
	var rc remoteCluster
	if err := json.Unmarshal(body, &rc); err != nil && resp.StatusCode == http.StatusOK {
		return nil, -1, fmt.Errorf("bad response body: %w", err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return &rc, 0, nil
	case http.StatusServiceUnavailable:
		ra := time.Duration(0)
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
				ra = time.Duration(secs) * time.Second
			}
		}
		msg := rc.Error
		if msg == "" {
			msg = "overloaded"
		}
		return nil, ra, fmt.Errorf("server overloaded: %s", msg)
	default:
		msg := rc.Error
		if msg == "" {
			msg = strings.TrimSpace(string(body))
		}
		retryAfter := time.Duration(-1)
		if resp.StatusCode >= 500 {
			// Any server-side failure is an endpoint problem, not a query
			// problem: eligible for failover to the next endpoint.
			retryAfter = 0
		}
		return nil, retryAfter, fmt.Errorf("HTTP %d: %s", resp.StatusCode, msg)
	}
}

// runRemote queries every seed against the remote server and renders the
// same cluster summaries the local path prints.
func runRemote(cfg *remoteConfig, seeds []hkpr.NodeID, out io.Writer) error {
	client := &http.Client{Timeout: 60 * time.Second}
	rng := rand.New(rand.NewSource(int64(cfg.rngSeed)))
	for _, seed := range seeds {
		rc, err := queryRemote(client, cfg, seed, rng, out)
		if err != nil {
			return err
		}
		if len(seeds) > 1 {
			fmt.Fprintf(out, "--- seed %d ---\n", seed)
		}
		fmt.Fprintf(out, "query time: %.2fms  (method=%s cached=%v coalesced=%v epoch=%d)\n",
			rc.ElapsedMS, rc.Method, rc.Cached, rc.Coalesced, rc.Epoch)
		if rc.Degraded != "" {
			fmt.Fprintf(out, "degraded: %s (served in a reduced mode under server overload)\n", rc.Degraded)
		}
		fmt.Fprintf(out, "cluster: %d nodes, conductance %.4f\n", rc.Size, rc.Conductance)
		members := append([]int64(nil), rc.Cluster...)
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		if len(members) > cfg.topK {
			members = members[:cfg.topK]
		}
		strs := make([]string, len(members))
		for i, v := range members {
			strs[i] = strconv.FormatInt(v, 10)
		}
		fmt.Fprintf(out, "members (first %d): %s\n", len(members), strings.Join(strs, " "))
	}
	return nil
}
