package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// shedThenServe fakes an hkprserver that sheds the first n requests with 503
// + Retry-After, then answers.
func shedThenServe(n int64, degraded string) (*httptest.Server, *atomic.Int64) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= n {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{"error": "overloaded, retry later"})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{
			"seed": 3, "method": "tea+", "cluster": []int64{9, 3, 5}, "size": 3,
			"conductance": 0.25, "cached": false, "epoch": 2, "elapsed_ms": 1.5,
			"degraded": degraded,
		})
	}))
	return ts, &calls
}

func TestRemoteRetriesOverloadThenSucceeds(t *testing.T) {
	ts, calls := shedThenServe(2, "stale")
	defer ts.Close()
	var out bytes.Buffer
	// -retry-max 5ms caps the server's 1s Retry-After hint so the test stays
	// fast while still exercising the honoring path.
	err := run([]string{"-server", ts.URL, "-seed", "3", "-retries", "4",
		"-retry-base", "1ms", "-retry-max", "5ms"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 2 sheds + 1 success", got)
	}
	text := out.String()
	for _, want := range []string{"backing off", "degraded: stale", "cluster: 3 nodes", "conductance 0.2500", "members (first 3): 3 5 9"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRemoteRetryBudgetExhausted(t *testing.T) {
	ts, calls := shedThenServe(1000, "")
	defer ts.Close()
	var out bytes.Buffer
	err := run([]string{"-server", ts.URL, "-seed", "3", "-retries", "2",
		"-retry-base", "1ms", "-retry-max", "2ms"}, &out)
	if err == nil || !strings.Contains(err.Error(), "attempts exhausted") {
		t.Fatalf("err = %v, want retry budget exhaustion", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want initial + 2 retries", got)
	}
}

func TestRemoteTerminalErrorNotRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "seed must be a node id in range"})
	}))
	defer ts.Close()
	err := run([]string{"-server", ts.URL, "-seed", "3", "-retry-base", "1ms"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "HTTP 400") {
		t.Fatalf("err = %v, want terminal HTTP 400", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("a 400 was retried: %d attempts", got)
	}
}

// okServer fakes a healthy endpoint that always answers seed 3.
func okServer() (*httptest.Server, *atomic.Int64) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		json.NewEncoder(w).Encode(map[string]any{
			"seed": 3, "method": "tea+", "cluster": []int64{9, 3, 5}, "size": 3,
			"conductance": 0.25, "cached": false, "epoch": 2, "elapsed_ms": 1.5,
		})
	}))
	return ts, &calls
}

// TestRemoteFailsOverOn5xx: a 500 from the first endpoint moves the query to
// the second immediately, with no backoff pass consumed.
func TestRemoteFailsOverOn5xx(t *testing.T) {
	var badCalls atomic.Int64
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		badCalls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer bad.Close()
	good, goodCalls := okServer()
	defer good.Close()

	var out bytes.Buffer
	err := run([]string{"-server", bad.URL + "," + good.URL, "-seed", "3",
		"-retries", "0", "-retry-base", "1ms"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if badCalls.Load() != 1 || goodCalls.Load() != 1 {
		t.Fatalf("calls: bad=%d good=%d, want 1 each", badCalls.Load(), goodCalls.Load())
	}
	text := out.String()
	for _, want := range []string{"failing over", "cluster: 3 nodes"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

// TestRemoteFailsOverOnConnectionRefused: a dead endpoint (refused
// connection) is skipped, and the surviving endpoint stays preferred across
// subsequent seeds — the dead one is probed only once.
func TestRemoteFailsOverOnConnectionRefused(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // now refuses connections
	good, goodCalls := okServer()
	defer good.Close()

	var out bytes.Buffer
	err := run([]string{"-server", deadURL + "," + good.URL, "-seed", "3,3",
		"-retries", "0", "-retry-base", "1ms"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if goodCalls.Load() != 2 {
		t.Fatalf("good endpoint calls = %d, want 2 (one per seed)", goodCalls.Load())
	}
	// Sticky preference: only the first seed pays the probe of the dead
	// endpoint, so "failing over" appears exactly once.
	if got := strings.Count(out.String(), "failing over"); got != 1 {
		t.Fatalf("%d failovers logged, want 1 (preference must stick):\n%s", got, out.String())
	}
}

// TestRemoteAllEndpointsShedBacksOff: both endpoints shed 503 → one backoff
// pass, then the pass succeeds on the recovered first endpoint.
func TestRemoteAllEndpointsShedBacksOff(t *testing.T) {
	a, aCalls := shedThenServe(1, "")
	defer a.Close()
	b, bCalls := shedThenServe(1000, "")
	defer b.Close()

	var out bytes.Buffer
	err := run([]string{"-server", a.URL + "," + b.URL, "-seed", "3",
		"-retries", "2", "-retry-base", "1ms", "-retry-max", "2ms"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	// Pass 1 sheds on both, pass 2 succeeds on a without touching b.
	if aCalls.Load() != 2 || bCalls.Load() != 1 {
		t.Fatalf("calls: a=%d b=%d, want a=2 b=1", aCalls.Load(), bCalls.Load())
	}
	if !strings.Contains(out.String(), "backing off") {
		t.Errorf("output missing backoff notice:\n%s", out.String())
	}
}

// TestRemote4xxTerminalDespiteSecondEndpoint: a 400 is the query's fault, not
// the endpoint's — no failover, no retry.
func TestRemote4xxTerminalDespiteSecondEndpoint(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "seed must be a node id in range"})
	}))
	defer bad.Close()
	good, goodCalls := okServer()
	defer good.Close()

	err := run([]string{"-server", bad.URL + "," + good.URL, "-seed", "3",
		"-retry-base", "1ms"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "HTTP 400") {
		t.Fatalf("err = %v, want terminal HTTP 400", err)
	}
	if goodCalls.Load() != 0 {
		t.Fatalf("a 400 failed over: good endpoint saw %d calls", goodCalls.Load())
	}
}

func TestBackoffDelayBoundsAndJitter(t *testing.T) {
	cfg := &remoteConfig{base: 100 * time.Millisecond, max: 5 * time.Second}
	rng := rand.New(rand.NewSource(1))
	for attempt := 1; attempt <= 20; attempt++ {
		d := backoffDelay(cfg, attempt, 0, rng)
		if d <= 0 || d > cfg.max {
			t.Fatalf("attempt %d: delay %v outside (0, %v]", attempt, d, cfg.max)
		}
	}
	// The Retry-After hint raises the wait but never past the cap.
	if d := backoffDelay(cfg, 1, 2*time.Second, rng); d < 2*time.Second || d > cfg.max {
		t.Fatalf("hinted delay %v not in [2s, %v]", d, cfg.max)
	}
	if d := backoffDelay(cfg, 1, time.Minute, rng); d != cfg.max {
		t.Fatalf("hint beyond cap: delay %v, want %v", d, cfg.max)
	}
	// Jitter actually spreads delays for the same attempt.
	a := backoffDelay(cfg, 3, 0, rand.New(rand.NewSource(2)))
	b := backoffDelay(cfg, 3, 0, rand.New(rand.NewSource(3)))
	if a == b {
		t.Fatalf("no jitter: %v == %v", a, b)
	}
}
