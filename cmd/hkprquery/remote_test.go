package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// shedThenServe fakes an hkprserver that sheds the first n requests with 503
// + Retry-After, then answers.
func shedThenServe(n int64, degraded string) (*httptest.Server, *atomic.Int64) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= n {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{"error": "overloaded, retry later"})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{
			"seed": 3, "method": "tea+", "cluster": []int64{9, 3, 5}, "size": 3,
			"conductance": 0.25, "cached": false, "epoch": 2, "elapsed_ms": 1.5,
			"degraded": degraded,
		})
	}))
	return ts, &calls
}

func TestRemoteRetriesOverloadThenSucceeds(t *testing.T) {
	ts, calls := shedThenServe(2, "stale")
	defer ts.Close()
	var out bytes.Buffer
	// -retry-max 5ms caps the server's 1s Retry-After hint so the test stays
	// fast while still exercising the honoring path.
	err := run([]string{"-server", ts.URL, "-seed", "3", "-retries", "4",
		"-retry-base", "1ms", "-retry-max", "5ms"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 2 sheds + 1 success", got)
	}
	text := out.String()
	for _, want := range []string{"backing off", "degraded: stale", "cluster: 3 nodes", "conductance 0.2500", "members (first 3): 3 5 9"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRemoteRetryBudgetExhausted(t *testing.T) {
	ts, calls := shedThenServe(1000, "")
	defer ts.Close()
	var out bytes.Buffer
	err := run([]string{"-server", ts.URL, "-seed", "3", "-retries", "2",
		"-retry-base", "1ms", "-retry-max", "2ms"}, &out)
	if err == nil || !strings.Contains(err.Error(), "attempts exhausted") {
		t.Fatalf("err = %v, want retry budget exhaustion", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want initial + 2 retries", got)
	}
}

func TestRemoteTerminalErrorNotRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]string{"error": "seed must be a node id in range"})
	}))
	defer ts.Close()
	err := run([]string{"-server", ts.URL, "-seed", "3", "-retry-base", "1ms"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "HTTP 400") {
		t.Fatalf("err = %v, want terminal HTTP 400", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("a 400 was retried: %d attempts", got)
	}
}

func TestBackoffDelayBoundsAndJitter(t *testing.T) {
	cfg := &remoteConfig{base: 100 * time.Millisecond, max: 5 * time.Second}
	rng := rand.New(rand.NewSource(1))
	for attempt := 1; attempt <= 20; attempt++ {
		d := backoffDelay(cfg, attempt, 0, rng)
		if d <= 0 || d > cfg.max {
			t.Fatalf("attempt %d: delay %v outside (0, %v]", attempt, d, cfg.max)
		}
	}
	// The Retry-After hint raises the wait but never past the cap.
	if d := backoffDelay(cfg, 1, 2*time.Second, rng); d < 2*time.Second || d > cfg.max {
		t.Fatalf("hinted delay %v not in [2s, %v]", d, cfg.max)
	}
	if d := backoffDelay(cfg, 1, time.Minute, rng); d != cfg.max {
		t.Fatalf("hint beyond cap: delay %v, want %v", d, cfg.max)
	}
	// Jitter actually spreads delays for the same attempt.
	a := backoffDelay(cfg, 3, 0, rand.New(rand.NewSource(2)))
	b := backoffDelay(cfg, 3, 0, rand.New(rand.NewSource(3)))
	if a == b {
		t.Fatalf("no jitter: %v == %v", a, b)
	}
}
