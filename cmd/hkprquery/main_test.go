package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"hkpr"
)

func writeTestGraph(t *testing.T) string {
	t.Helper()
	g, _, err := hkpr.GenerateSBM(4, 30, 8, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := hkpr.SaveEdgeListFile(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunQuery(t *testing.T) {
	path := writeTestGraph(t)
	var out bytes.Buffer
	err := run([]string{"-graph", path, "-seed", "3", "-method", "tea+"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"graph:", "cluster:", "conductance", "members"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunQueryAllMethods(t *testing.T) {
	path := writeTestGraph(t)
	for _, m := range []string{"tea", "monte-carlo", "hk-relax", "exact"} {
		var out bytes.Buffer
		if err := run([]string{"-graph", path, "-seed", "1", "-method", m}, &out); err != nil {
			t.Errorf("method %s: %v", m, err)
		}
	}
}

func TestRunQueryBatchedSeeds(t *testing.T) {
	path := writeTestGraph(t)
	var out bytes.Buffer
	if err := run([]string{"-graph", path, "-seed", "3,7,11", "-method", "tea"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "batch: 3 seeds") {
		t.Errorf("output missing batch summary:\n%s", text)
	}
	for _, want := range []string{"--- seed 3 ---", "--- seed 7 ---", "--- seed 11 ---"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing per-seed block %q:\n%s", want, text)
		}
	}
	if got := strings.Count(text, "cluster:"); got != 3 {
		t.Errorf("expected 3 cluster lines, got %d:\n%s", got, text)
	}
}

func TestRunQuerySeedListErrors(t *testing.T) {
	path := writeTestGraph(t)
	for _, bad := range []string{"1,x", "1,,2", "-3", "1, 2, three"} {
		if err := run([]string{"-graph", path, "-seed", bad}, &bytes.Buffer{}); err == nil {
			t.Errorf("seed list %q should be a usage error", bad)
		}
	}
	// Out-of-range members of a batch fail with the offending seed named.
	if err := run([]string{"-graph", path, "-seed", "1,999999"}, &bytes.Buffer{}); err == nil {
		t.Error("out-of-range batched seed should error")
	}
	// The baseline estimators have no batched form.
	if err := run([]string{"-graph", path, "-seed", "1,2", "-method", "hk-relax"}, &bytes.Buffer{}); err == nil {
		t.Error("batched seeds with a baseline method should error")
	}
}

func TestRunQueryErrors(t *testing.T) {
	if err := run([]string{"-seed", "1"}, &bytes.Buffer{}); err == nil {
		t.Error("missing graph should error")
	}
	if err := run([]string{"-graph", "/no/such/file", "-seed", "1"}, &bytes.Buffer{}); err == nil {
		t.Error("missing file should error")
	}
	path := writeTestGraph(t)
	if err := run([]string{"-graph", path, "-seed", "999999"}, &bytes.Buffer{}); err == nil {
		t.Error("out-of-range seed should error")
	}
	if err := run([]string{"-graph", path, "-seed", "1", "-method", "bogus"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown method should error")
	}
}

func TestLoadGraphBinary(t *testing.T) {
	g, _, err := hkpr.GenerateSBM(3, 20, 6, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := hkpr.SaveBinaryFile(path, g); err != nil {
		t.Fatal(err)
	}
	loaded, err := loadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != g.N() {
		t.Error("binary load mismatch")
	}
}
