// Command hkprquery runs a single local clustering query: it loads a graph,
// estimates the heat kernel PageRank vector of a seed node with the chosen
// algorithm, performs the sweep cut, and prints the resulting cluster.
//
// Example:
//
//	hkprquery -graph plc.txt -seed 17 -method tea+ -t 5 -eps 0.5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"hkpr"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hkprquery:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hkprquery", flag.ContinueOnError)
	var (
		graphPath = fs.String("graph", "", "path to the graph (edge list or binary, by extension)")
		seed      = fs.Int("seed", 0, "seed node id")
		method    = fs.String("method", string(hkpr.MethodTEAPlus), "estimator: tea+ | tea | monte-carlo | hk-relax | cluster-hkpr | exact")
		heat      = fs.Float64("t", 5, "heat constant t")
		epsRel    = fs.Float64("eps", 0.5, "relative error threshold εr")
		delta     = fs.Float64("delta", 0, "normalized-HKPR threshold δ (0 = 1/n)")
		pf        = fs.Float64("pf", 1e-6, "failure probability")
		rngSeed   = fs.Uint64("rng", 1, "random seed")
		topK      = fs.Int("top", 20, "print at most this many cluster members")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		return fmt.Errorf("missing -graph path")
	}

	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "graph: n=%d m=%d avg-degree=%.2f\n", g.N(), g.M(), g.AverageDegree())

	d := *delta
	if d == 0 {
		d = 1 / float64(g.N())
	}
	opts := hkpr.Options{T: *heat, EpsRel: *epsRel, Delta: d, FailureProb: *pf, Seed: *rngSeed}

	start := time.Now()
	res, err := hkpr.EstimateHKPR(g, hkpr.NodeID(*seed), hkpr.Method(*method), opts)
	if err != nil {
		return err
	}
	sweep := hkpr.Sweep(g, res.Scores)
	elapsed := time.Since(start)

	fmt.Fprintf(out, "method: %s  heat t=%.1f  εr=%.2f  δ=%.2e\n", *method, *heat, *epsRel, d)
	fmt.Fprintf(out, "query time: %v  (pushes=%d walks=%d)\n",
		elapsed, res.Stats.PushOperations, res.Stats.RandomWalks)
	fmt.Fprintf(out, "cluster: %d nodes, conductance %.4f, volume %d, cut %d\n",
		len(sweep.Cluster), sweep.Conductance, sweep.Volume, sweep.Cut)

	members := append([]hkpr.NodeID(nil), sweep.Cluster...)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	if len(members) > *topK {
		members = members[:*topK]
	}
	strs := make([]string, len(members))
	for i, v := range members {
		strs[i] = fmt.Sprintf("%d", v)
	}
	fmt.Fprintf(out, "members (first %d): %s\n", len(members), strings.Join(strs, " "))
	return nil
}

func loadGraph(path string) (*hkpr.Graph, error) {
	if strings.HasSuffix(path, ".bin") {
		return hkpr.LoadBinaryFile(path)
	}
	return hkpr.LoadEdgeListFile(path)
}
