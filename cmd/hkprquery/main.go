// Command hkprquery runs local clustering queries: it loads a graph,
// estimates the heat kernel PageRank vector of one or more seed nodes with
// the chosen algorithm, performs the sweep cut, and prints the resulting
// cluster of every seed.
//
// Multiple comma-separated seeds execute as one batched call (EstimateMany):
// the seeds share a single multi-source graph pass, and every seed's result
// is bit-identical to a standalone single-seed run.
//
// With -updates the graph is wrapped as a live-updatable Dynamic and an
// edge-list delta is applied before querying: each line is "u v" (add an
// edge), "+ u v" / "add u v" (add), or "- u v" / "del u v" (remove); '#'
// starts a comment.  Added edges may reference nodes beyond the loaded
// graph — the node range grows to cover them.  The query then runs on the
// base CSR plus the delta overlay, bit-identical to a from-scratch rebuild
// of the updated edge set.
//
// With -server the query goes to a running hkprserver (or hkprrouter) over
// HTTP instead of loading a graph locally.  -server takes a comma-separated
// endpoint list: a 5xx response or a connection failure fails the query over
// to the next endpoint immediately, sticking with whichever endpoint last
// answered.  Only when every endpoint is unavailable does the client back off
// with jittered exponential delay — honoring the smallest Retry-After drain
// estimate any endpoint advertised, capped at -retry-max — up to -retries
// passes per seed.  Responses the server degraded under pressure ("stale" or
// "clamped") are called out in the output.
//
// Example:
//
//	hkprquery -graph plc.txt -seed 17 -method tea+ -t 5 -eps 0.5
//	hkprquery -graph plc.txt -seed 17,42,101 -method tea+
//	hkprquery -graph plc.txt -updates delta.txt -seed 17
//	hkprquery -server http://localhost:8080 -seed 17 -retries 6
//	hkprquery -server http://a:8080,http://b:8080 -seed 17
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"hkpr"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hkprquery:", err)
		os.Exit(1)
	}
}

// parseSeeds splits a comma-separated seed list; every element must be a
// non-negative integer.
func parseSeeds(s string) ([]hkpr.NodeID, error) {
	parts := strings.Split(s, ",")
	seeds := make([]hkpr.NodeID, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("invalid -seed list %q: empty element", s)
		}
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("invalid -seed list %q: %q is not a non-negative node id", s, p)
		}
		seeds = append(seeds, hkpr.NodeID(v))
	}
	return seeds, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hkprquery", flag.ContinueOnError)
	var (
		graphPath = fs.String("graph", "", "path to the graph (edge list or binary, by extension)")
		seedList  = fs.String("seed", "0", "seed node id, or a comma-separated list queried as one batch")
		method    = fs.String("method", string(hkpr.MethodTEAPlus), "estimator: tea+ | tea | monte-carlo | hk-relax | cluster-hkpr | exact")
		heat      = fs.Float64("t", 5, "heat constant t")
		epsRel    = fs.Float64("eps", 0.5, "relative error threshold εr")
		delta     = fs.Float64("delta", 0, "normalized-HKPR threshold δ (0 = 1/n)")
		pf        = fs.Float64("pf", 1e-6, "failure probability")
		rngSeed   = fs.Uint64("rng", 1, "random seed")
		topK      = fs.Int("top", 20, "print at most this many cluster members")
		updates   = fs.String("updates", "", "edge-list delta applied before querying: 'u v' or '+ u v' adds an edge, '- u v' (or 'del u v') removes one")

		server    = fs.String("server", "", "query running hkprserver/hkprrouter endpoints (comma-separated base URLs; 5xx or connection failures fail over to the next) instead of loading a graph locally")
		retries   = fs.Int("retries", 4, "with -server: retry passes over the endpoint list per seed after every endpoint shed or failed")
		retryBase = fs.Duration("retry-base", 100*time.Millisecond, "with -server: initial backoff delay, doubled (with jitter) per retry")
		retryMax  = fs.Duration("retry-max", 5*time.Second, "with -server: cap on any single backoff delay, including the server's Retry-After hint")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *server != "" {
		seeds, err := parseSeeds(*seedList)
		if err != nil {
			return err
		}
		var servers []string
		for _, s := range strings.Split(*server, ",") {
			if s = strings.TrimSpace(s); s != "" {
				servers = append(servers, s)
			}
		}
		if len(servers) == 0 {
			return fmt.Errorf("-server holds no endpoints")
		}
		return runRemote(&remoteConfig{
			servers: servers,
			method:  *method,
			epsRel:  *epsRel,
			topK:    *topK,
			retries: *retries,
			base:    *retryBase,
			max:     *retryMax,
			rngSeed: *rngSeed,
		}, seeds, out)
	}
	if *graphPath == "" {
		return fmt.Errorf("missing -graph path")
	}
	seeds, err := parseSeeds(*seedList)
	if err != nil {
		return err
	}

	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "graph: n=%d m=%d avg-degree=%.2f\n", g.N(), g.M(), g.AverageDegree())

	var src hkpr.GraphSource = g
	if *updates != "" {
		batch, err := parseUpdates(*updates, g.N())
		if err != nil {
			return err
		}
		dyn := hkpr.NewDynamic(g, hkpr.DynamicOptions{})
		if _, err := dyn.ApplyUpdates(batch); err != nil {
			return fmt.Errorf("applying %s: %w", *updates, err)
		}
		snap := dyn.Snapshot()
		fmt.Fprintf(out, "updates: +%d nodes +%d edges -%d edges → epoch %d (n=%d m=%d)\n",
			batch.AddNodes, len(batch.AddEdges), len(batch.RemoveEdges), snap.Epoch(), snap.N(), snap.M())
		src = dyn
	}

	d := *delta
	if d == 0 {
		d = 1 / float64(src.Snapshot().N())
	}
	opts := hkpr.Options{T: *heat, EpsRel: *epsRel, Delta: d, FailureProb: *pf, Seed: *rngSeed}
	fmt.Fprintf(out, "method: %s  heat t=%.1f  εr=%.2f  δ=%.2e\n", *method, *heat, *epsRel, d)

	start := time.Now()
	results, err := estimate(src, seeds, hkpr.Method(*method), opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if len(seeds) > 1 {
		fmt.Fprintf(out, "batch: %d seeds in one multi-source pass, total %v (%.1f queries/sec)\n",
			len(seeds), elapsed, float64(len(seeds))/elapsed.Seconds())
	}

	for i, seed := range seeds {
		res := results[i]
		sweep := hkpr.Sweep(src, res.Scores)
		if len(seeds) > 1 {
			fmt.Fprintf(out, "--- seed %d ---\n", seed)
		}
		fmt.Fprintf(out, "query time: %v  (pushes=%d walks=%d)\n",
			elapsed, res.Stats.PushOperations, res.Stats.RandomWalks)
		fmt.Fprintf(out, "cluster: %d nodes, conductance %.4f, volume %d, cut %d\n",
			len(sweep.Cluster), sweep.Conductance, sweep.Volume, sweep.Cut)

		members := append([]hkpr.NodeID(nil), sweep.Cluster...)
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		if len(members) > *topK {
			members = members[:*topK]
		}
		strs := make([]string, len(members))
		for i, v := range members {
			strs[i] = fmt.Sprintf("%d", v)
		}
		fmt.Fprintf(out, "members (first %d): %s\n", len(members), strings.Join(strs, " "))
	}
	return nil
}

// estimate runs the query: a single seed goes through the standalone
// estimator (which supports the baseline methods too); several seeds run as
// one batched multi-source call, available for the core methods.
func estimate(src hkpr.GraphSource, seeds []hkpr.NodeID, method hkpr.Method, opts hkpr.Options) ([]*hkpr.Result, error) {
	if len(seeds) == 1 {
		res, err := hkpr.EstimateHKPR(src, seeds[0], method, opts)
		if err != nil {
			return nil, err
		}
		return []*hkpr.Result{res}, nil
	}
	switch method {
	case hkpr.MethodTEAPlus, hkpr.MethodTEA, hkpr.MethodMonteCarlo:
	default:
		return nil, fmt.Errorf("batched -seed lists support tea+, tea and monte-carlo, got %q", method)
	}
	c, err := hkpr.NewClustererWithMethod(src, opts, method)
	if err != nil {
		return nil, err
	}
	results, errs, err := c.EstimateMany(seeds, hkpr.Options{})
	if err != nil {
		return nil, err
	}
	for i, serr := range errs {
		if serr != nil {
			return nil, fmt.Errorf("seed %d: %w", seeds[i], serr)
		}
	}
	return results, nil
}

func loadGraph(path string) (*hkpr.Graph, error) {
	if strings.HasSuffix(path, ".bin") {
		return hkpr.LoadBinaryFile(path)
	}
	return hkpr.LoadEdgeListFile(path)
}

// parseUpdates reads an edge-list delta file into one UpdateBatch.  A line is
// "u v" or "+ u v" / "add u v" (insert an edge) or "- u v" / "del u v"
// (remove one); '#' starts a comment.  Added edges may reference node IDs at
// or beyond n — AddNodes grows the node range to cover the largest one.
func parseUpdates(path string, n int) (hkpr.UpdateBatch, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return hkpr.UpdateBatch{}, err
	}
	var batch hkpr.UpdateBatch
	maxID := hkpr.NodeID(n - 1)
	for lineNo, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		op := "+"
		switch len(fields) {
		case 2:
		case 3:
			op = fields[0]
			fields = fields[1:]
		default:
			return hkpr.UpdateBatch{}, fmt.Errorf("%s:%d: want 'u v' or 'op u v', got %q", path, lineNo+1, line)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return hkpr.UpdateBatch{}, fmt.Errorf("%s:%d: non-integer node id in %q", path, lineNo+1, line)
		}
		e := [2]hkpr.NodeID{hkpr.NodeID(u), hkpr.NodeID(v)}
		switch op {
		case "+", "add":
			batch.AddEdges = append(batch.AddEdges, e)
			if e[0] > maxID {
				maxID = e[0]
			}
			if e[1] > maxID {
				maxID = e[1]
			}
		case "-", "del":
			batch.RemoveEdges = append(batch.RemoveEdges, e)
		default:
			return hkpr.UpdateBatch{}, fmt.Errorf("%s:%d: unknown op %q (want +, -, add or del)", path, lineNo+1, op)
		}
	}
	if grow := int(maxID) - (n - 1); grow > 0 {
		batch.AddNodes = grow
	}
	return batch, nil
}
