// Command hkprquery runs local clustering queries: it loads a graph,
// estimates the heat kernel PageRank vector of one or more seed nodes with
// the chosen algorithm, performs the sweep cut, and prints the resulting
// cluster of every seed.
//
// Multiple comma-separated seeds execute as one batched call (EstimateMany):
// the seeds share a single multi-source graph pass, and every seed's result
// is bit-identical to a standalone single-seed run.
//
// Example:
//
//	hkprquery -graph plc.txt -seed 17 -method tea+ -t 5 -eps 0.5
//	hkprquery -graph plc.txt -seed 17,42,101 -method tea+
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"hkpr"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hkprquery:", err)
		os.Exit(1)
	}
}

// parseSeeds splits a comma-separated seed list; every element must be a
// non-negative integer.
func parseSeeds(s string) ([]hkpr.NodeID, error) {
	parts := strings.Split(s, ",")
	seeds := make([]hkpr.NodeID, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("invalid -seed list %q: empty element", s)
		}
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("invalid -seed list %q: %q is not a non-negative node id", s, p)
		}
		seeds = append(seeds, hkpr.NodeID(v))
	}
	return seeds, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("hkprquery", flag.ContinueOnError)
	var (
		graphPath = fs.String("graph", "", "path to the graph (edge list or binary, by extension)")
		seedList  = fs.String("seed", "0", "seed node id, or a comma-separated list queried as one batch")
		method    = fs.String("method", string(hkpr.MethodTEAPlus), "estimator: tea+ | tea | monte-carlo | hk-relax | cluster-hkpr | exact")
		heat      = fs.Float64("t", 5, "heat constant t")
		epsRel    = fs.Float64("eps", 0.5, "relative error threshold εr")
		delta     = fs.Float64("delta", 0, "normalized-HKPR threshold δ (0 = 1/n)")
		pf        = fs.Float64("pf", 1e-6, "failure probability")
		rngSeed   = fs.Uint64("rng", 1, "random seed")
		topK      = fs.Int("top", 20, "print at most this many cluster members")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		return fmt.Errorf("missing -graph path")
	}
	seeds, err := parseSeeds(*seedList)
	if err != nil {
		return err
	}

	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "graph: n=%d m=%d avg-degree=%.2f\n", g.N(), g.M(), g.AverageDegree())

	d := *delta
	if d == 0 {
		d = 1 / float64(g.N())
	}
	opts := hkpr.Options{T: *heat, EpsRel: *epsRel, Delta: d, FailureProb: *pf, Seed: *rngSeed}
	fmt.Fprintf(out, "method: %s  heat t=%.1f  εr=%.2f  δ=%.2e\n", *method, *heat, *epsRel, d)

	start := time.Now()
	results, err := estimate(g, seeds, hkpr.Method(*method), opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if len(seeds) > 1 {
		fmt.Fprintf(out, "batch: %d seeds in one multi-source pass, total %v (%.1f queries/sec)\n",
			len(seeds), elapsed, float64(len(seeds))/elapsed.Seconds())
	}

	for i, seed := range seeds {
		res := results[i]
		sweep := hkpr.Sweep(g, res.Scores)
		if len(seeds) > 1 {
			fmt.Fprintf(out, "--- seed %d ---\n", seed)
		}
		fmt.Fprintf(out, "query time: %v  (pushes=%d walks=%d)\n",
			elapsed, res.Stats.PushOperations, res.Stats.RandomWalks)
		fmt.Fprintf(out, "cluster: %d nodes, conductance %.4f, volume %d, cut %d\n",
			len(sweep.Cluster), sweep.Conductance, sweep.Volume, sweep.Cut)

		members := append([]hkpr.NodeID(nil), sweep.Cluster...)
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		if len(members) > *topK {
			members = members[:*topK]
		}
		strs := make([]string, len(members))
		for i, v := range members {
			strs[i] = fmt.Sprintf("%d", v)
		}
		fmt.Fprintf(out, "members (first %d): %s\n", len(members), strings.Join(strs, " "))
	}
	return nil
}

// estimate runs the query: a single seed goes through the standalone
// estimator (which supports the baseline methods too); several seeds run as
// one batched multi-source call, available for the core methods.
func estimate(g *hkpr.Graph, seeds []hkpr.NodeID, method hkpr.Method, opts hkpr.Options) ([]*hkpr.Result, error) {
	if len(seeds) == 1 {
		res, err := hkpr.EstimateHKPR(g, seeds[0], method, opts)
		if err != nil {
			return nil, err
		}
		return []*hkpr.Result{res}, nil
	}
	switch method {
	case hkpr.MethodTEAPlus, hkpr.MethodTEA, hkpr.MethodMonteCarlo:
	default:
		return nil, fmt.Errorf("batched -seed lists support tea+, tea and monte-carlo, got %q", method)
	}
	c, err := hkpr.NewClustererWithMethod(g, opts, method)
	if err != nil {
		return nil, err
	}
	results, errs, err := c.EstimateMany(seeds, hkpr.Options{})
	if err != nil {
		return nil, err
	}
	for i, serr := range errs {
		if serr != nil {
			return nil, fmt.Errorf("seed %d: %w", seeds[i], serr)
		}
	}
	return results, nil
}

func loadGraph(path string) (*hkpr.Graph, error) {
	if strings.HasSuffix(path, ".bin") {
		return hkpr.LoadBinaryFile(path)
	}
	return hkpr.LoadEdgeListFile(path)
}
