// Command hkprserver exposes local clustering queries over HTTP, the shape of
// deployment the paper's interactive-exploration scenario (§1, "Bob explores
// Twitter around Elon Musk") calls for: the graph is loaded once, the
// per-graph setup is amortized, and each query returns within interactive
// latency.
//
// Endpoints:
//
//	GET /healthz                 → 200 ok
//	GET /stats                   → graph statistics (JSON)
//	GET /cluster?seed=17         → local cluster of node 17 (JSON)
//	GET /cluster?seed=17&method=tea&eps=0.3
//
// Example:
//
//	hkprserver -graph twitter.bin -addr :8080
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"hkpr"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hkprserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hkprserver", flag.ContinueOnError)
	var (
		graphPath = fs.String("graph", "", "path to the graph (edge list or .bin)")
		addr      = fs.String("addr", ":8080", "listen address")
		heat      = fs.Float64("t", 5, "heat constant t")
		epsRel    = fs.Float64("eps", 0.5, "relative error threshold εr")
		pf        = fs.Float64("pf", 1e-6, "failure probability")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		return fmt.Errorf("missing -graph path")
	}
	var (
		g   *hkpr.Graph
		err error
	)
	if strings.HasSuffix(*graphPath, ".bin") {
		g, err = hkpr.LoadBinaryFile(*graphPath)
	} else {
		g, err = hkpr.LoadEdgeListFile(*graphPath)
	}
	if err != nil {
		return err
	}
	srv, err := newServer(g, hkpr.Options{T: *heat, EpsRel: *epsRel, FailureProb: *pf})
	if err != nil {
		return err
	}
	log.Printf("serving local clustering on %s (graph: n=%d m=%d)", *addr, g.N(), g.M())
	return http.ListenAndServe(*addr, srv.routes())
}

// server holds the long-lived clusterer shared by all requests.
type server struct {
	g         *hkpr.Graph
	clusterer *hkpr.Clusterer
}

func newServer(g *hkpr.Graph, opts hkpr.Options) (*server, error) {
	c, err := hkpr.NewClusterer(g, opts)
	if err != nil {
		return nil, err
	}
	return &server{g: g, clusterer: c}, nil
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /cluster", s.handleCluster)
	return mux
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

type statsResponse struct {
	Nodes         int     `json:"nodes"`
	Edges         int64   `json:"edges"`
	AverageDegree float64 `json:"average_degree"`
	MaxDegree     int32   `json:"max_degree"`
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.g.ComputeStats()
	writeJSON(w, http.StatusOK, statsResponse{
		Nodes:         st.Nodes,
		Edges:         st.Edges,
		AverageDegree: st.AverageDegree,
		MaxDegree:     st.MaxDegree,
	})
}

type clusterResponse struct {
	Seed        int64   `json:"seed"`
	Method      string  `json:"method"`
	Cluster     []int64 `json:"cluster"`
	Size        int     `json:"size"`
	Conductance float64 `json:"conductance"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	Pushes      int64   `json:"push_operations"`
	Walks       int64   `json:"random_walks"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *server) handleCluster(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	seedStr := q.Get("seed")
	if seedStr == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing seed parameter"})
		return
	}
	seed, err := strconv.ParseInt(seedStr, 10, 64)
	if err != nil || seed < 0 || seed >= int64(s.g.N()) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "seed must be a node id in range"})
		return
	}
	method := hkpr.Method(q.Get("method"))
	if method == "" {
		method = hkpr.MethodTEAPlus
	}
	var query hkpr.Options
	if epsStr := q.Get("eps"); epsStr != "" {
		eps, err := strconv.ParseFloat(epsStr, 64)
		if err != nil || eps <= 0 || eps > 1 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "eps must be in (0,1]"})
			return
		}
		query.EpsRel = eps
	}

	start := time.Now()
	var local *hkpr.LocalCluster
	switch method {
	case hkpr.MethodTEAPlus, hkpr.MethodTEA, hkpr.MethodMonteCarlo:
		// The shared clusterer answers TEA+; other methods get a one-off
		// clusterer so the estimator matches the request.
		if method == hkpr.MethodTEAPlus {
			local, err = s.clusterer.LocalClusterWithOptions(hkpr.NodeID(seed), query)
		} else {
			var c *hkpr.Clusterer
			c, err = hkpr.NewClustererWithMethod(s.g, s.clusterer.Options(), method)
			if err == nil {
				local, err = c.LocalClusterWithOptions(hkpr.NodeID(seed), query)
			}
		}
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "method must be tea+, tea or monte-carlo"})
		return
	}
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	elapsed := time.Since(start)

	members := make([]int64, len(local.Cluster))
	for i, v := range local.Cluster {
		members[i] = int64(v)
	}
	writeJSON(w, http.StatusOK, clusterResponse{
		Seed:        seed,
		Method:      string(method),
		Cluster:     members,
		Size:        len(members),
		Conductance: local.Conductance,
		ElapsedMS:   float64(elapsed.Microseconds()) / 1000,
		Pushes:      local.HKPR.Stats.PushOperations,
		Walks:       local.HKPR.Stats.RandomWalks,
	})
}

func writeJSON(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(payload)
}
