// Command hkprserver exposes local clustering queries over HTTP, the shape of
// deployment the paper's interactive-exploration scenario (§1, "Bob explores
// Twitter around Elon Musk") calls for: the graph is loaded once, the
// per-graph setup is amortized, and each query returns within interactive
// latency.  Requests are served through the hkpr.Engine serving subsystem —
// a worker pool with bounded admission control, an LRU result cache with
// request coalescing, and per-request cancellation tied to the client
// connection.
//
// Endpoints:
//
//	GET /healthz                 → 200 ok
//	GET /stats                   → graph + serving statistics (JSON)
//	GET /metrics                 → serving metrics (Prometheus text format)
//	POST /update                 → apply one graph update batch as a new
//	                               epoch (JSON body: {"add_nodes":N,
//	                               "add_edges":[[u,v],…],
//	                               "remove_edges":[[u,v],…]}); all-or-nothing
//	                               validation (self-loops, duplicates, absent
//	                               removals → 400), returns the new epoch and
//	                               the scoped cache-invalidation summary
//	GET /debug/queries           → the most recently completed query traces,
//	                               newest first (JSON; ring sized by
//	                               -trace-buffer)
//	GET /cluster?seed=17         → local cluster of node 17 (JSON)
//	GET /cluster?seed=17&method=tea&eps=0.3
//	GET /cluster?seed=17&nocache=1
//	GET /cluster?seed=17&topk=10    → additionally render the 10 best
//	                                  normalized HKPR scores (flat vector,
//	                                  truncated per request; the cached full
//	                                  vector is shared zero-copy)
//	GET /cluster?seed=17&sweepk=50  → sweep only the 50 best-ranked nodes
//	                                  (bounded conductance scan; like topk, a
//	                                  per-request rendering over the shared
//	                                  cached vector)
//	GET /cluster?seed=17&trace=1    → include the per-stage execution trace
//	                                  inline in the response
//
// Cluster responses carry cached/coalesced flags, the chosen per-query
// parallelism, and queue-wait/elapsed timings alongside the cluster itself.
// Overload is reported as 503 (admission queue full — back off and retry) with
// a Retry-After header derived from the engine's drain estimate, as is a
// server that is shutting down; a query exceeding its deadline returns 504,
// and -strict-invariants turns a failed self-verification into a 500.
//
// Under overload pressure the engine degrades before it sheds: responses
// served in a reduced mode carry "degraded":"stale" (a radius-invalidated
// cached result at its pre-update epoch, revalidating in the background) or
// "degraded":"clamped" (computed under reduced walk/sweep budgets, echoed in
// "effective").  -pressure-off disables the overload controller entirely.
// On SIGINT/SIGTERM the server stops admission and drains: every admitted
// query finishes (up to -drain-timeout) before the process exits.
//
// Tuning flags:
//
//	-workers N     concurrent query executions (default GOMAXPROCS)
//	-queue N       admission-queue depth; excess load is shed (default 4×workers)
//	-cache-mb N    result-cache budget in MiB; 0 disables (default 64)
//	-timeout D     per-query execution deadline, e.g. 5s; 0 disables (default 10s)
//	-parallel N    per-query push/walk parallelism; results are bit-identical
//	               at any value, so it is purely a latency knob (default 0 =
//	               serial unless -adaptive)
//	-adaptive      choose per-query parallelism from live load instead: idle
//	               engine → whole CPU budget per query, saturated queue → serial
//	               (an explicit -parallel value caps the adaptive choice;
//	               leaving it unset leaves adaptivity uncapped)
//	-adaptive-ewma α   smooth the queue depth the adaptive choice sees with an
//	               exponentially weighted moving average (α ∈ (0,1], default 1
//	               = instantaneous); small α stops P oscillating under bursty
//	               load
//	-cpu-tokens N  shared CPU budget for workers + push chunks + walk shards
//	               (default max(workers, GOMAXPROCS))
//	-compact-delta N   background-compact the delta overlay back into CSR
//	               after N accumulated update operations (0 = library
//	               default, negative disables compaction)
//
// Observability flags:
//
//	-trace-buffer N      completed-query trace ring served at /debug/queries;
//	                     0 disables (default 256)
//	-slow-query D        log queries slower than D with a per-stage breakdown;
//	                     0 disables (default 0)
//	-strict-invariants   fail queries (HTTP 500) whose inline invariant
//	                     self-verification fails, instead of only counting
//	                     the violation in /metrics
//	-pprof               expose net/http/pprof profiling under /debug/pprof/
//
// Example:
//
//	hkprserver -graph twitter.bin -addr :8080 -workers 16 -cache-mb 256 -adaptive
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hkpr"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hkprserver:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hkprserver", flag.ContinueOnError)
	var (
		graphPath = fs.String("graph", "", "path to the graph (edge list or .bin)")
		addr      = fs.String("addr", ":8080", "listen address")
		heat      = fs.Float64("t", 5, "heat constant t")
		epsRel    = fs.Float64("eps", 0.5, "relative error threshold εr")
		pf        = fs.Float64("pf", 1e-6, "failure probability")
		workers   = fs.Int("workers", 0, "concurrent query executions (0 = GOMAXPROCS)")
		queue     = fs.Int("queue", 0, "admission queue depth (0 = 4×workers)")
		cacheMB   = fs.Int("cache-mb", 64, "result cache budget in MiB (0 disables)")
		timeout   = fs.Duration("timeout", 10*time.Second, "per-query execution deadline (0 disables)")
		parallel  = fs.Int("parallel", 0, "per-query push/walk parallelism (0 = serial unless -adaptive; subject to free CPU tokens)")
		adaptive  = fs.Bool("adaptive", false, "choose per-query parallelism adaptively from queue depth and free CPU tokens (an explicit -parallel caps it)")
		adaptEWMA = fs.Float64("adaptive-ewma", 1, "EWMA smoothing factor α in (0,1] for the queue depth the adaptive choice sees; 1 = instantaneous, smaller = smoother under bursty load")
		cpuTokens = fs.Int("cpu-tokens", 0, "shared CPU token budget for workers, push chunks and walk shards (0 = max(workers, GOMAXPROCS))")
		batchWin  = fs.Duration("batch-window", 0, "hold admitted queries up to this long so same-options queries share one batched multi-source execution (0 disables)")
		batchMaxK = fs.Int("batch-max-k", 0, "flush a batching-window group early at this many queries (0 = 8)")
		traceBuf  = fs.Int("trace-buffer", 256, "completed-query trace ring capacity served at /debug/queries (0 disables)")
		slowQuery = fs.Duration("slow-query", 0, "log queries slower than this with a per-stage breakdown (0 disables)")
		strictInv = fs.Bool("strict-invariants", false, "fail queries whose inline invariant self-verification fails (HTTP 500) instead of only counting the violation")
		pprofOn   = fs.Bool("pprof", false, "expose net/http/pprof profiling under /debug/pprof/")
		compactTh = fs.Int("compact-delta", 0, "compact the update delta overlay back into CSR after this many accumulated operations (0 = library default, negative disables)")

		pressureOff = fs.Bool("pressure-off", false, "disable the overload pressure controller (no degraded modes, no Retry-After hints)")
		staleFrac   = fs.Float64("stale-fraction", 0, "fraction of the cache budget reserved for serving invalidated results stale under pressure (0 = default 1/8)")
		drainTO     = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain: how long to let admitted queries finish before forcing close")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		return fmt.Errorf("missing -graph path")
	}
	var (
		g   *hkpr.Graph
		err error
	)
	if strings.HasSuffix(*graphPath, ".bin") {
		g, err = hkpr.LoadBinaryFile(*graphPath)
	} else {
		g, err = hkpr.LoadEdgeListFile(*graphPath)
	}
	if err != nil {
		return err
	}
	cacheBytes := int64(*cacheMB) << 20
	if *cacheMB <= 0 {
		cacheBytes = -1
	}
	// The graph is always served through a Dynamic wrapper so POST /update
	// works out of the box; an untouched Dynamic reads exactly like the
	// static graph it wraps.
	dyn := hkpr.NewDynamic(g, hkpr.DynamicOptions{CompactThreshold: *compactTh})
	srv, err := newServer(dyn, hkpr.Options{T: *heat, EpsRel: *epsRel, FailureProb: *pf}, hkpr.EngineConfig{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheBytes:     cacheBytes,
		DefaultTimeout: *timeout,
		Parallelism:    *parallel,
		Adaptive:       *adaptive,
		AdaptiveEWMA:   *adaptEWMA,
		CPUTokens:      *cpuTokens,
		BatchWindow:    *batchWin,
		BatchMaxK:      *batchMaxK,

		TraceBuffer:        *traceBuf,
		SlowQueryThreshold: *slowQuery,
		StrictInvariants:   *strictInv,

		Pressure: hkpr.PressureConfig{
			Disabled:      *pressureOff,
			StaleFraction: *staleFrac,
		},
	})
	if err != nil {
		return err
	}
	defer srv.engine.Close()
	srv.pprof = *pprofOn

	httpSrv := &http.Server{Addr: *addr, Handler: srv.routes()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	st := srv.engine.Stats()
	log.Printf("serving local clustering on %s (graph: n=%d m=%d, workers=%d queue=%d cache=%dMiB parallel=%d adaptive=%v cpu-tokens=%d)",
		*addr, g.N(), g.M(), st.Workers, st.QueueCapacity, st.CacheCapacity>>20, st.Parallelism, st.Adaptive, st.CPUTokens)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		log.Printf("shutting down: draining admitted queries (timeout %s)", *drainTO)
		// Drain first: admission stops immediately (new queries get 503) while
		// every already-admitted query runs to completion, then stop the HTTP
		// listener.  Within -drain-timeout no admitted query is abandoned.
		drainErr := srv.engine.Drain(*drainTO)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		return drainErr
	}
}

// server holds the long-lived serving engine shared by all requests.
type server struct {
	engine *hkpr.Engine
	pprof  bool
}

func newServer(src hkpr.GraphSource, opts hkpr.Options, cfg hkpr.EngineConfig) (*server, error) {
	eng, err := hkpr.NewEngine(src, opts, cfg)
	if err != nil {
		return nil, err
	}
	return &server{engine: eng}, nil
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /cluster", s.handleCluster)
	mux.HandleFunc("POST /update", s.handleUpdate)
	mux.HandleFunc("GET /debug/queries", s.handleDebugQueries)
	if s.pprof {
		// Registered explicitly instead of importing the package for its
		// DefaultServeMux side effect, so profiling stays opt-in.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

type statsResponse struct {
	Nodes         int             `json:"nodes"`
	Edges         int64           `json:"edges"`
	AverageDegree float64         `json:"average_degree"`
	MaxDegree     int32           `json:"max_degree"`
	Epoch         uint64          `json:"epoch"`
	Serving       hkpr.ServeStats `json:"serving"`
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := s.engine.Graph()
	writeJSON(w, http.StatusOK, statsResponse{
		Nodes:         snap.N(),
		Edges:         snap.M(),
		AverageDegree: snap.AverageDegree(),
		MaxDegree:     snap.MaxDegree(),
		Epoch:         snap.Epoch(),
		Serving:       s.engine.Stats(),
	})
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.engine.WriteMetrics(w)
}

type clusterResponse struct {
	Seed        int64                  `json:"seed"`
	Method      string                 `json:"method"`
	Cluster     []int64                `json:"cluster"`
	Size        int                    `json:"size"`
	Conductance float64                `json:"conductance"`
	Scores      hkpr.ScoreVector       `json:"scores,omitempty"`
	ElapsedMS   float64                `json:"elapsed_ms"`
	QueueWaitMS float64                `json:"queue_wait_ms"`
	Cached      bool                   `json:"cached"`
	Coalesced   bool                   `json:"coalesced"`
	Epoch       uint64                 `json:"epoch"`
	Parallelism int                    `json:"parallelism"`
	Pushes      int64                  `json:"push_operations"`
	Walks       int64                  `json:"random_walks"`
	Degraded    string                 `json:"degraded,omitempty"`
	Effective   *hkpr.EffectiveOptions `json:"effective,omitempty"`
	Trace       *hkpr.TraceRecord      `json:"trace,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *server) handleCluster(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	seedStr := q.Get("seed")
	if seedStr == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing seed parameter"})
		return
	}
	seed, err := strconv.ParseInt(seedStr, 10, 64)
	if err != nil || seed < 0 || seed >= int64(s.engine.Graph().N()) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "seed must be a node id in range"})
		return
	}
	method := q.Get("method")
	topK := 0
	if tkStr := q.Get("topk"); tkStr != "" {
		tk, err := strconv.Atoi(tkStr)
		if err != nil || tk < 1 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "topk must be a positive integer"})
			return
		}
		topK = tk
	}
	sweepK := 0
	if skStr := q.Get("sweepk"); skStr != "" {
		sk, err := strconv.Atoi(skStr)
		if err != nil || sk < 1 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "sweepk must be a positive integer"})
			return
		}
		sweepK = sk
	}
	var query hkpr.Options
	if epsStr := q.Get("eps"); epsStr != "" {
		eps, err := strconv.ParseFloat(epsStr, 64)
		if err != nil || eps <= 0 || eps > 1 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "eps must be in (0,1]"})
			return
		}
		query.EpsRel = eps
	}

	resp, err := s.engine.Do(r.Context(), hkpr.ServeRequest{
		Seed:   hkpr.NodeID(seed),
		Method: method,
		Opts:   query,
		// A bounded sweepk replaces the full sweep; both produce a cluster.
		Sweep:   sweepK == 0,
		SweepK:  sweepK,
		TopK:    topK,
		Trace:   q.Get("trace") != "",
		NoCache: q.Get("nocache") != "",
	})
	if err != nil {
		status, msg := statusForError(err)
		if status == 0 {
			if r.Context().Err() != nil {
				// Client went away; nothing useful to write.
				return
			}
			// Canceled for some other reason: surface it.
			status, msg = http.StatusInternalServerError, err.Error()
		}
		var oe *hkpr.OverloadedError
		if errors.As(err, &oe) && oe.RetryAfter > 0 {
			// Shed under pressure: tell the client when the queue is expected
			// to have drained (whole seconds, rounded up, floored at 1s so a
			// light-load estimate never renders as "retry now", per RFC 9110).
			w.Header().Set("Retry-After", strconv.FormatInt(hkpr.RetryAfterSeconds(oe.RetryAfter), 10))
		}
		writeJSON(w, status, errorResponse{Error: msg})
		return
	}

	members := make([]int64, len(resp.Sweep.Cluster))
	for i, v := range resp.Sweep.Cluster {
		members[i] = int64(v)
	}
	var effective *hkpr.EffectiveOptions
	if resp.Degraded == hkpr.DegradedClamped {
		eff := resp.Effective
		effective = &eff
	}
	writeJSON(w, http.StatusOK, clusterResponse{
		Seed:        seed,
		Method:      resp.Method,
		Cluster:     members,
		Size:        len(members),
		Conductance: resp.Sweep.Conductance,
		Scores:      hkpr.ScoreVector(resp.Top),
		ElapsedMS:   float64(resp.Elapsed.Microseconds()) / 1000,
		QueueWaitMS: float64(resp.QueueWait.Microseconds()) / 1000,
		Cached:      resp.Cached,
		Coalesced:   resp.Coalesced,
		Epoch:       resp.Epoch,
		Parallelism: resp.Parallelism,
		Pushes:      resp.Result.Stats.PushOperations,
		Walks:       resp.Result.Stats.RandomWalks,
		Degraded:    resp.Degraded,
		Effective:   effective,
		Trace:       resp.Trace,
	})
}

// updateRequest is the POST /update JSON body: one atomic graph update batch.
type updateRequest struct {
	AddNodes    int              `json:"add_nodes"`
	AddEdges    [][2]hkpr.NodeID `json:"add_edges"`
	RemoveEdges [][2]hkpr.NodeID `json:"remove_edges"`
}

func (s *server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req updateRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad update body: " + err.Error()})
		return
	}
	res, err := s.engine.ApplyUpdates(hkpr.UpdateBatch{
		AddNodes:    req.AddNodes,
		AddEdges:    req.AddEdges,
		RemoveEdges: req.RemoveEdges,
	})
	if err != nil {
		writeJSON(w, updateStatusForError(err), errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// updateStatusForError maps ApplyUpdates failures to HTTP statuses: batch
// validation errors are the client's fault (400), a static engine cannot
// accept updates at all (409), a closing engine mirrors query shedding (503).
func updateStatusForError(err error) int {
	switch {
	case errors.Is(err, hkpr.ErrSelfLoop),
		errors.Is(err, hkpr.ErrDuplicateEdge),
		errors.Is(err, hkpr.ErrEdgeNotFound),
		errors.Is(err, hkpr.ErrInvalidNode):
		return http.StatusBadRequest
	case errors.Is(err, hkpr.ErrStaticGraph):
		return http.StatusConflict
	case errors.Is(err, hkpr.ErrEngineClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// statusForError maps a serving-layer error to its HTTP status and client
// message.  Status 0 means the query was canceled — the caller decides
// whether the client is gone (write nothing) or the cancellation deserves a
// 500.
func statusForError(err error) (int, string) {
	switch {
	case errors.Is(err, hkpr.ErrUnknownMethod):
		return http.StatusBadRequest, "method must be tea+, tea or monte-carlo"
	case errors.Is(err, hkpr.ErrOverloaded):
		return http.StatusServiceUnavailable, "overloaded, retry later"
	case errors.Is(err, hkpr.ErrEngineClosed):
		// The engine drains during graceful shutdown; tell clients to retry
		// elsewhere rather than reporting an internal error.
		return http.StatusServiceUnavailable, "server shutting down"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "query deadline exceeded"
	case errors.Is(err, context.Canceled):
		return 0, ""
	case errors.Is(err, hkpr.ErrInvariantViolation):
		// Strict self-verification failed: the computed result violated a
		// conservation or bound invariant and was withheld.
		return http.StatusInternalServerError, err.Error()
	default:
		return http.StatusInternalServerError, err.Error()
	}
}

// debugQueriesResponse wraps /debug/queries so the payload stays extensible.
type debugQueriesResponse struct {
	Queries []*hkpr.TraceRecord `json:"queries"`
}

func (s *server) handleDebugQueries(w http.ResponseWriter, _ *http.Request) {
	recs := s.engine.Traces()
	if recs == nil {
		recs = []*hkpr.TraceRecord{}
	}
	writeJSON(w, http.StatusOK, debugQueriesResponse{Queries: recs})
}

func writeJSON(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(payload)
}
