package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hkpr"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	g, _, err := hkpr.GenerateSBM(4, 30, 8, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(g, hkpr.Options{T: 5, EpsRel: 0.5, FailureProb: 1e-4, Seed: 1}, hkpr.EngineConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.engine.Close() })
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return ts
}

func TestHealthAndStats(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Nodes != 120 || stats.Edges <= 0 {
		t.Errorf("stats: %+v", stats)
	}
	if stats.Serving.Workers != 2 || stats.Serving.CacheCapacity <= 0 {
		t.Errorf("serving stats not populated: %+v", stats.Serving)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	// Serve one query so the counters are non-trivial.
	resp, err := http.Get(ts.URL + "/cluster?seed=5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"hkpr_serve_requests_total 1",
		"hkpr_serve_executions_total 1",
		"# TYPE hkpr_serve_latency_seconds histogram",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

func TestClusterEndpointCaching(t *testing.T) {
	ts := newTestServer(t)
	get := func() clusterResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/cluster?seed=7")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var cr clusterResponse
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			t.Fatal(err)
		}
		return cr
	}
	first, second := get(), get()
	if first.Cached {
		t.Error("first query should not be cached")
	}
	if !second.Cached {
		t.Error("second identical query should be served from cache")
	}
	if first.Size != second.Size || first.Conductance != second.Conductance {
		t.Errorf("cached answer differs: %+v vs %+v", first, second)
	}
}

func TestClusterEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/cluster?seed=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var cr clusterResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.Seed != 3 || cr.Size == 0 || len(cr.Cluster) != cr.Size {
		t.Errorf("cluster response: %+v", cr)
	}
	if cr.Conductance <= 0 || cr.Conductance > 1 {
		t.Errorf("conductance %v", cr.Conductance)
	}
	if cr.Method != string(hkpr.MethodTEAPlus) {
		t.Errorf("default method %s", cr.Method)
	}
}

func TestClusterEndpointMethodsAndOverrides(t *testing.T) {
	ts := newTestServer(t)
	for _, m := range []string{"tea", "monte-carlo"} {
		resp, err := http.Get(ts.URL + "/cluster?seed=1&method=" + m + "&eps=0.7")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("method %s status %d", m, resp.StatusCode)
		}
	}
}

// TestClusterEndpointStatusMapping covers the error→status mapping: 400 for
// malformed requests, 504 for queries that outlive their deadline, and 503
// for a server that is shutting down (ErrEngineClosed must not surface as a
// 500).
func TestClusterEndpointStatusMapping(t *testing.T) {
	g, _, err := hkpr.GenerateSBM(4, 30, 8, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(g, hkpr.Options{T: 5, EpsRel: 0.5, FailureProb: 1e-4, Seed: 1},
		hkpr.EngineConfig{Workers: 2, DefaultTimeout: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)

	status := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := status("/cluster?seed=1&method=bogus"); got != http.StatusBadRequest {
		t.Errorf("bad method: status %d, want 400", got)
	}
	// Monte-Carlo with a tight εr needs tens of millions of walks and cannot
	// early-terminate, so the 1ms deadline always fires first.
	if got := status("/cluster?seed=1&method=monte-carlo&eps=0.01&nocache=1"); got != http.StatusGatewayTimeout {
		t.Errorf("deadline: status %d, want 504", got)
	}

	if err := srv.engine.Close(); err != nil {
		t.Fatal(err)
	}
	if got := status("/cluster?seed=1"); got != http.StatusServiceUnavailable {
		t.Errorf("closed engine: status %d, want 503", got)
	}
}

func TestClusterEndpointErrors(t *testing.T) {
	ts := newTestServer(t)
	cases := []string{
		"/cluster",                       // missing seed
		"/cluster?seed=abc",              // non-numeric
		"/cluster?seed=999999",           // out of range
		"/cluster?seed=1&method=bogus",   // unknown method
		"/cluster?seed=1&eps=2",          // bad eps
		"/cluster?seed=1&eps=notanumber", // malformed eps
	}
	for _, path := range cases {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestClusterEndpointTopK(t *testing.T) {
	ts := newTestServer(t)

	resp, err := http.Get(ts.URL + "/cluster?seed=3&topk=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var cr clusterResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Scores) != 5 {
		t.Fatalf("topk=5 rendered %d scores", len(cr.Scores))
	}
	for i := 1; i < len(cr.Scores); i++ {
		a, b := cr.Scores[i-1], cr.Scores[i]
		if a.Score < b.Score || (a.Score == b.Score && a.Node >= b.Node) {
			t.Fatalf("scores not in (score desc, node asc) order: %+v then %+v", a, b)
		}
	}

	// A repeat without topk must hit the cache (topk does not fragment the
	// key) and omit the scores array.
	resp2, err := http.Get(ts.URL + "/cluster?seed=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var cr2 clusterResponse
	if err := json.NewDecoder(resp2.Body).Decode(&cr2); err != nil {
		t.Fatal(err)
	}
	if !cr2.Cached {
		t.Error("repeat query without topk missed the cache: topk fragmented the key")
	}
	if cr2.Scores != nil {
		t.Errorf("scores rendered without topk: %+v", cr2.Scores)
	}

	// Invalid topk is a 400.
	resp3, err := http.Get(ts.URL + "/cluster?seed=3&topk=0")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("topk=0 status %d, want 400", resp3.StatusCode)
	}
}
