package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"hkpr"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	g, _, err := hkpr.GenerateSBM(4, 30, 8, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(g, hkpr.Options{T: 5, EpsRel: 0.5, FailureProb: 1e-4, Seed: 1}, hkpr.EngineConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.engine.Close() })
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return ts
}

func TestHealthAndStats(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Nodes != 120 || stats.Edges <= 0 {
		t.Errorf("stats: %+v", stats)
	}
	if stats.Serving.Workers != 2 || stats.Serving.CacheCapacity <= 0 {
		t.Errorf("serving stats not populated: %+v", stats.Serving)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	// Serve one query so the counters are non-trivial.
	resp, err := http.Get(ts.URL + "/cluster?seed=5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"hkpr_serve_requests_total 1",
		"hkpr_serve_executions_total 1",
		"# TYPE hkpr_serve_latency_seconds histogram",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

func TestClusterEndpointCaching(t *testing.T) {
	ts := newTestServer(t)
	get := func() clusterResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/cluster?seed=7")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var cr clusterResponse
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			t.Fatal(err)
		}
		return cr
	}
	first, second := get(), get()
	if first.Cached {
		t.Error("first query should not be cached")
	}
	if !second.Cached {
		t.Error("second identical query should be served from cache")
	}
	if first.Size != second.Size || first.Conductance != second.Conductance {
		t.Errorf("cached answer differs: %+v vs %+v", first, second)
	}
}

func TestClusterEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/cluster?seed=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var cr clusterResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if cr.Seed != 3 || cr.Size == 0 || len(cr.Cluster) != cr.Size {
		t.Errorf("cluster response: %+v", cr)
	}
	if cr.Conductance <= 0 || cr.Conductance > 1 {
		t.Errorf("conductance %v", cr.Conductance)
	}
	if cr.Method != string(hkpr.MethodTEAPlus) {
		t.Errorf("default method %s", cr.Method)
	}
}

func TestClusterEndpointMethodsAndOverrides(t *testing.T) {
	ts := newTestServer(t)
	for _, m := range []string{"tea", "monte-carlo"} {
		resp, err := http.Get(ts.URL + "/cluster?seed=1&method=" + m + "&eps=0.7")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("method %s status %d", m, resp.StatusCode)
		}
	}
}

// TestClusterEndpointStatusMapping covers the error→status mapping: 400 for
// malformed requests, 504 for queries that outlive their deadline, and 503
// for a server that is shutting down (ErrEngineClosed must not surface as a
// 500).
func TestClusterEndpointStatusMapping(t *testing.T) {
	g, _, err := hkpr.GenerateSBM(4, 30, 8, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(g, hkpr.Options{T: 5, EpsRel: 0.5, FailureProb: 1e-4, Seed: 1},
		hkpr.EngineConfig{Workers: 2, DefaultTimeout: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)

	status := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := status("/cluster?seed=1&method=bogus"); got != http.StatusBadRequest {
		t.Errorf("bad method: status %d, want 400", got)
	}
	// Monte-Carlo with a tight εr needs tens of millions of walks and cannot
	// early-terminate, so the 1ms deadline always fires first.
	if got := status("/cluster?seed=1&method=monte-carlo&eps=0.01&nocache=1"); got != http.StatusGatewayTimeout {
		t.Errorf("deadline: status %d, want 504", got)
	}

	if err := srv.engine.Close(); err != nil {
		t.Fatal(err)
	}
	if got := status("/cluster?seed=1"); got != http.StatusServiceUnavailable {
		t.Errorf("closed engine: status %d, want 503", got)
	}
}

func TestClusterEndpointErrors(t *testing.T) {
	ts := newTestServer(t)
	cases := []string{
		"/cluster",                       // missing seed
		"/cluster?seed=abc",              // non-numeric
		"/cluster?seed=999999",           // out of range
		"/cluster?seed=1&method=bogus",   // unknown method
		"/cluster?seed=1&eps=2",          // bad eps
		"/cluster?seed=1&eps=notanumber", // malformed eps
	}
	for _, path := range cases {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

func TestClusterEndpointTopK(t *testing.T) {
	ts := newTestServer(t)

	resp, err := http.Get(ts.URL + "/cluster?seed=3&topk=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var cr clusterResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Scores) != 5 {
		t.Fatalf("topk=5 rendered %d scores", len(cr.Scores))
	}
	for i := 1; i < len(cr.Scores); i++ {
		a, b := cr.Scores[i-1], cr.Scores[i]
		if a.Score < b.Score || (a.Score == b.Score && a.Node >= b.Node) {
			t.Fatalf("scores not in (score desc, node asc) order: %+v then %+v", a, b)
		}
	}

	// A repeat without topk must hit the cache (topk does not fragment the
	// key) and omit the scores array.
	resp2, err := http.Get(ts.URL + "/cluster?seed=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var cr2 clusterResponse
	if err := json.NewDecoder(resp2.Body).Decode(&cr2); err != nil {
		t.Fatal(err)
	}
	if !cr2.Cached {
		t.Error("repeat query without topk missed the cache: topk fragmented the key")
	}
	if cr2.Scores != nil {
		t.Errorf("scores rendered without topk: %+v", cr2.Scores)
	}

	// Invalid topk is a 400.
	resp3, err := http.Get(ts.URL + "/cluster?seed=3&topk=0")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("topk=0 status %d, want 400", resp3.StatusCode)
	}
}

func TestClusterEndpointSweepK(t *testing.T) {
	ts := newTestServer(t)

	get := func(path string) clusterResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		var cr clusterResponse
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			t.Fatal(err)
		}
		return cr
	}

	cr := get("/cluster?seed=4&sweepk=10")
	if cr.Size == 0 || cr.Size > 10 {
		t.Fatalf("sweepk=10 cluster size %d", cr.Size)
	}
	if cr.Conductance <= 0 || cr.Conductance > 1 {
		t.Fatalf("conductance %v", cr.Conductance)
	}
	// sweepk is a per-request rendering over the shared score vector, so a
	// different k must hit the same cache entry rather than re-executing.
	again := get("/cluster?seed=4&sweepk=5")
	if !again.Cached {
		t.Error("second sweepk request missed the cache: sweepk fragmented the key")
	}
	if again.Size == 0 || again.Size > 5 {
		t.Fatalf("sweepk=5 cluster size %d", again.Size)
	}
	// The full sweep scans every prefix, so its best conductance can only be
	// at least as good as a bounded scan's.
	full := get("/cluster?seed=4")
	if full.Conductance > cr.Conductance {
		t.Fatalf("full sweep conductance %v worse than sweepk=10's %v", full.Conductance, cr.Conductance)
	}

	// Invalid sweepk values are 400s.
	for _, path := range []string{
		"/cluster?seed=4&sweepk=0",
		"/cluster?seed=4&sweepk=-3",
		"/cluster?seed=4&sweepk=lots",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), "sweepk must be a positive integer") {
			t.Errorf("%s: body %q", path, body)
		}
	}
}

func TestClusterEndpointTrace(t *testing.T) {
	ts := newTestServer(t)

	get := func(path string) clusterResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		var cr clusterResponse
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			t.Fatal(err)
		}
		return cr
	}

	// method=tea so the walk stage always runs (TEA+ may early-terminate).
	cr := get("/cluster?seed=6&method=tea&trace=1")
	if cr.Trace == nil {
		t.Fatal("trace=1 returned no inline trace")
	}
	if cr.Trace.Seed != 6 || cr.Trace.CacheOutcome != "miss" {
		t.Fatalf("trace: %+v", cr.Trace)
	}
	for _, stage := range []string{"push", "walk", "merge", "sweep"} {
		if _, ok := cr.Trace.StageDuration(stage); !ok {
			t.Fatalf("trace missing stage %q: %s", stage, cr.Trace.StageSummary())
		}
	}
	if cr.Trace.InvariantChecks == 0 {
		t.Fatal("trace carries no invariant checks")
	}

	// A traced repeat is served from cache and traces the lookup.
	hit := get("/cluster?seed=6&method=tea&trace=1")
	if !hit.Cached || hit.Trace == nil || hit.Trace.CacheOutcome != "hit" {
		t.Fatalf("traced repeat: cached=%v trace=%+v", hit.Cached, hit.Trace)
	}

	// Untraced requests omit the field entirely.
	if plain := get("/cluster?seed=6&method=tea"); plain.Trace != nil {
		t.Fatalf("untraced request carries a trace: %+v", plain.Trace)
	}
}

func TestDebugQueriesEndpoint(t *testing.T) {
	g, _, err := hkpr.GenerateSBM(4, 30, 8, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(g, hkpr.Options{T: 5, EpsRel: 0.5, FailureProb: 1e-4, Seed: 1},
		hkpr.EngineConfig{Workers: 2, TraceBuffer: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.engine.Close() })
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)

	// Empty ring: still a valid JSON document with an empty array.
	resp, err := http.Get(ts.URL + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	var dq debugQueriesResponse
	err = json.NewDecoder(resp.Body).Decode(&dq)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if dq.Queries == nil || len(dq.Queries) != 0 {
		t.Fatalf("empty ring: %+v", dq.Queries)
	}

	for _, seed := range []string{"2", "9"} {
		resp, err := http.Get(ts.URL + "/cluster?seed=" + seed)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err = http.Get(ts.URL + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&dq); err != nil {
		t.Fatal(err)
	}
	if len(dq.Queries) != 2 {
		t.Fatalf("%d recorded queries, want 2", len(dq.Queries))
	}
	// Newest first.
	if dq.Queries[0].Seed != 9 || dq.Queries[1].Seed != 2 {
		t.Fatalf("order: %d then %d", dq.Queries[0].Seed, dq.Queries[1].Seed)
	}
	rec := dq.Queries[0]
	if _, ok := rec.StageDuration("push"); !ok {
		t.Fatalf("recorded trace missing push span: %s", rec.StageSummary())
	}
	if rec.TotalNS <= 0 || rec.InvariantChecks == 0 {
		t.Fatalf("record not populated: %+v", rec)
	}
}

func TestStatusForError(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{hkpr.ErrUnknownMethod, http.StatusBadRequest},
		{hkpr.ErrOverloaded, http.StatusServiceUnavailable},
		{hkpr.ErrEngineClosed, http.StatusServiceUnavailable},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{context.Canceled, 0},
		{fmt.Errorf("wrapped: %w", hkpr.ErrInvariantViolation), http.StatusInternalServerError},
		{errors.New("anything else"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got, _ := statusForError(tc.err); got != tc.want {
			t.Errorf("statusForError(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

func TestPprofGated(t *testing.T) {
	g, _, err := hkpr.GenerateSBM(4, 30, 8, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(g, hkpr.Options{T: 5, EpsRel: 0.5, FailureProb: 1e-4, Seed: 1}, hkpr.EngineConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.engine.Close() })

	status := func(h http.Handler) int {
		ts := httptest.NewServer(h)
		defer ts.Close()
		resp, err := http.Get(ts.URL + "/debug/pprof/")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status(srv.routes()); got != http.StatusNotFound {
		t.Errorf("pprof off: status %d, want 404", got)
	}
	srv.pprof = true
	if got := status(srv.routes()); got != http.StatusOK {
		t.Errorf("pprof on: status %d, want 200", got)
	}
}

// TestOverloadRetryAfterHeader: a shed query returns 503 with a Retry-After
// header carrying the engine's drain estimate in whole seconds.
func TestOverloadRetryAfterHeader(t *testing.T) {
	g, _, err := hkpr.GenerateSBM(4, 30, 8, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	var unstick sync.Once
	t.Cleanup(func() { unstick.Do(func() { close(release) }) })
	srv, err := newServer(g, hkpr.Options{T: 5, EpsRel: 0.5, FailureProb: 1e-4, Seed: 1},
		hkpr.EngineConfig{
			Workers:    1,
			QueueDepth: 1,
			ExecGate:   func(*hkpr.ServeRequest) { <-release },
		})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.engine.Close() })
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)

	// Distinct seeds with nocache so nothing coalesces: the first execution
	// parks in the gate, the next fills the queue, and one of the rest is
	// shed.
	var wg sync.WaitGroup
	shed := make(chan *http.Response, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(fmt.Sprintf("%s/cluster?seed=%d&nocache=1", ts.URL, i))
			if err != nil {
				t.Errorf("get: %v", err)
				return
			}
			if resp.StatusCode == http.StatusServiceUnavailable {
				select {
				case shed <- resp:
					return // keeper's body is closed below
				default:
				}
			}
			resp.Body.Close()
		}(i)
	}
	select {
	case resp := <-shed:
		ra := resp.Header.Get("Retry-After")
		resp.Body.Close()
		if ra == "" {
			t.Fatal("503 without Retry-After header")
		}
		if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
			t.Fatalf("Retry-After %q not a positive whole-second count", ra)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("nothing was shed")
	}
	unstick.Do(func() { close(release) })
	wg.Wait()
}
