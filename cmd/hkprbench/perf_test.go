package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseParallelismList(t *testing.T) {
	got, err := parseParallelismList("1, 4,8")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 8 {
		t.Fatalf("parseParallelismList: %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "x", "-2"} {
		if _, err := parseParallelismList(bad); err == nil {
			t.Errorf("%q should be rejected", bad)
		}
	}
}

// TestPerfWritesBenchJSON runs the -perf mode at a tiny scale and checks
// every estimator gets a parseable BENCH_<name>.json with the fields the
// perf-trajectory tooling relies on.
func TestPerfWritesBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks")
	}
	dir := t.TempDir()
	err := run([]string{
		"-perf", "-parallel", "2", "-perf-nodes", "1000", "-bench-dir", dir, "-v=false",
	}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range perfMethods {
		path := filepath.Join(dir, "BENCH_"+m.slug+".json")
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing bench JSON: %v", err)
		}
		var rep perfReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			t.Fatalf("%s: bad JSON: %v", path, err)
		}
		if rep.Name != m.slug || len(rep.Points) != 1 {
			t.Fatalf("%s: unexpected report %+v", path, rep)
		}
		p := rep.Points[0]
		if p.Parallelism != 2 || p.NsPerOp <= 0 || p.Iterations <= 0 {
			t.Fatalf("%s: unexpected point %+v", path, p)
		}
		if p.WalkPhaseShare <= 0 || p.WalkPhaseShare > 1 {
			t.Fatalf("%s: walk share out of range: %v", path, p.WalkPhaseShare)
		}
		if p.RandomWalks == 0 {
			t.Fatalf("%s: walk stage did not run; the perf point monitors nothing", path)
		}
	}
}
