package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseParallelismList(t *testing.T) {
	got, err := parseParallelismList("1, 4,8")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 8 {
		t.Fatalf("parseParallelismList: %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "x", "-2"} {
		if _, err := parseParallelismList(bad); err == nil {
			t.Errorf("%q should be rejected", bad)
		}
	}
}

// TestPerfWritesBenchJSON runs the -perf mode at a tiny scale and checks
// every estimator gets a parseable BENCH_<name>.json with the fields the
// perf-trajectory tooling relies on.
func TestPerfWritesBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks")
	}
	dir := t.TempDir()
	err := run([]string{
		"-perf", "-parallel", "2", "-perf-nodes", "1000", "-bench-dir", dir, "-v=false",
	}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	slugs := make([]string, 0, len(perfMethods)+1)
	for _, m := range perfMethods {
		slugs = append(slugs, m.slug)
	}
	slugs = append(slugs, "serve")
	for _, slug := range slugs {
		path := filepath.Join(dir, "BENCH_"+slug+".json")
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing bench JSON: %v", err)
		}
		var rep perfReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			t.Fatalf("%s: bad JSON: %v", path, err)
		}
		if rep.Name != slug || len(rep.Points) != 1 {
			t.Fatalf("%s: unexpected report %+v", path, rep)
		}
		p := rep.Points[0]
		if p.Parallelism != 2 || p.NsPerOp <= 0 || p.Iterations <= 0 {
			t.Fatalf("%s: unexpected point %+v", path, p)
		}
		if slug != "serve" {
			if p.WalkPhaseShare <= 0 || p.WalkPhaseShare > 1 {
				t.Fatalf("%s: walk share out of range: %v", path, p.WalkPhaseShare)
			}
			if p.RandomWalks == 0 {
				t.Fatalf("%s: walk stage did not run; the perf point monitors nothing", path)
			}
		}
	}

	// The update entry measures query throughput under a live background
	// writer; its point is always serial and must record the writer's work.
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_update.json"))
	if err != nil {
		t.Fatalf("missing update bench JSON: %v", err)
	}
	var rep perfReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("BENCH_update.json: bad JSON: %v", err)
	}
	if rep.Name != "update" || len(rep.Points) != 1 {
		t.Fatalf("BENCH_update.json: unexpected report %+v", rep)
	}
	p := rep.Points[0]
	if p.Parallelism != 1 || p.NsPerOp <= 0 || p.QueriesPerSec <= 0 {
		t.Fatalf("BENCH_update.json: unexpected point %+v", p)
	}
	if p.UpdatesApplied == 0 {
		t.Fatal("BENCH_update.json: background writer applied no update batches; the point measured a static graph")
	}

	// The soak entry runs the chaos harness and must record the overload
	// trajectory: offered requests, a shed rate within the harness's own
	// bound, and a pressure tier (the 2x+ overload must leave nominal).
	raw, err = os.ReadFile(filepath.Join(dir, "BENCH_soak.json"))
	if err != nil {
		t.Fatalf("missing soak bench JSON: %v", err)
	}
	var soak perfReport
	if err := json.Unmarshal(raw, &soak); err != nil {
		t.Fatalf("BENCH_soak.json: bad JSON: %v", err)
	}
	if soak.Name != "soak" || len(soak.Points) != 1 {
		t.Fatalf("BENCH_soak.json: unexpected report %+v", soak)
	}
	sp := soak.Points[0]
	if sp.Requests == 0 || sp.ShedRate < 0 || sp.ShedRate > 0.95 {
		t.Fatalf("BENCH_soak.json: unexpected point %+v", sp)
	}
	if sp.MaxPressure == "" || sp.MaxPressure == "nominal" {
		t.Fatalf("BENCH_soak.json: controller never left nominal: %+v", sp)
	}
	if sp.P99Ns <= 0 {
		t.Fatalf("BENCH_soak.json: no saturated latency recorded: %+v", sp)
	}

	// The router entry measures the replica tier and must prove both the
	// failover timeline and the hedge/peer-fill paths engaged.
	raw, err = os.ReadFile(filepath.Join(dir, "BENCH_router.json"))
	if err != nil {
		t.Fatalf("missing router bench JSON: %v", err)
	}
	var rt perfReport
	if err := json.Unmarshal(raw, &rt); err != nil {
		t.Fatalf("BENCH_router.json: bad JSON: %v", err)
	}
	if rt.Name != "router" || len(rt.Points) != 1 {
		t.Fatalf("BENCH_router.json: unexpected report %+v", rt)
	}
	rp := rt.Points[0]
	if rp.NsPerOp <= 0 || rp.DirectNsPerOp <= 0 || rp.Iterations == 0 {
		t.Fatalf("BENCH_router.json: routed/direct latencies missing: %+v", rp)
	}
	if rp.FailoverRecoveryNs <= 0 || rp.RestabilizeNs <= 0 {
		t.Fatalf("BENCH_router.json: fault-recovery timeline missing: %+v", rp)
	}
	if rp.Hedged == 0 {
		t.Fatalf("BENCH_router.json: hedge path never engaged: %+v", rp)
	}
	if rp.PeerFills == 0 {
		t.Fatalf("BENCH_router.json: peer cache-fill path never engaged: %+v", rp)
	}
}

// TestCheckPerfBaseline pins the CI regression gate: a fresh report passes
// against a matching baseline, fails on a >2x allocs_per_op blow-up above
// the absolute floor, and tolerates missing baselines and parallelism points.
func TestCheckPerfBaseline(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, allocs int64) {
		rep := perfReport{Name: name, Points: []perfPoint{{Parallelism: 1, AllocsPerOp: allocs}}}
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "BENCH_"+name+".json"), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("tea", 100)

	fresh := func(allocs int64) perfReport {
		return perfReport{Name: "tea", Points: []perfPoint{{Parallelism: 1, AllocsPerOp: allocs}}}
	}
	if err := checkPerfBaseline(dir, fresh(150)); err != nil {
		t.Fatalf("within-budget point flagged: %v", err)
	}
	if err := checkPerfBaseline(dir, fresh(300)); err == nil {
		t.Fatal("3x allocs regression not flagged")
	}
	// Points and files absent from the baseline are not failures.
	if err := checkPerfBaseline(dir, perfReport{Name: "tea", Points: []perfPoint{{Parallelism: 8, AllocsPerOp: 1e6}}}); err != nil {
		t.Fatalf("unknown parallelism point flagged: %v", err)
	}
	if err := checkPerfBaseline(dir, perfReport{Name: "nonexistent"}); err != nil {
		t.Fatalf("missing baseline file flagged: %v", err)
	}
	// Near-zero baselines tolerate small absolute jitter even past 2x.
	write("serve", 10)
	if err := checkPerfBaseline(dir, perfReport{Name: "serve", Points: []perfPoint{{Parallelism: 1, AllocsPerOp: 40}}}); err != nil {
		t.Fatalf("sub-floor jitter flagged: %v", err)
	}
}

// TestCheckPerfBaselineBytes pins the bytes_per_op half of the gate: a >2x
// heap-bytes blow-up above the absolute floor fails, within-budget growth
// and sub-floor jitter pass, and a zero-bytes baseline (older JSON without
// the field) never trips.
func TestCheckPerfBaselineBytes(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, allocs, bytesPerOp int64) {
		rep := perfReport{Name: name, Points: []perfPoint{{Parallelism: 1, AllocsPerOp: allocs, BytesPerOp: bytesPerOp}}}
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "BENCH_"+name+".json"), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fresh := func(bytesPerOp int64) perfReport {
		return perfReport{Name: "tea", Points: []perfPoint{{Parallelism: 1, AllocsPerOp: 100, BytesPerOp: bytesPerOp}}}
	}
	write("tea", 100, 1<<20)
	if err := checkPerfBaseline(dir, fresh(3<<19)); err != nil {
		t.Fatalf("1.5x bytes growth flagged: %v", err)
	}
	if err := checkPerfBaseline(dir, fresh(3<<20)); err == nil {
		t.Fatal("3x bytes_per_op regression not flagged")
	}
	// Small absolute growth below the floor passes even past 2x.
	write("tea", 100, 1<<10)
	if err := checkPerfBaseline(dir, fresh(16<<10)); err != nil {
		t.Fatalf("sub-floor bytes jitter flagged: %v", err)
	}
	// Legacy baseline without bytes_per_op never trips the bytes gate.
	write("tea", 100, 0)
	if err := checkPerfBaseline(dir, fresh(1<<30)); err != nil {
		t.Fatalf("zero-bytes baseline flagged: %v", err)
	}
}

// TestCheckPerfBaselineSoak pins the soak half of the gate: shed rate is
// bounded by absolute slack, the degraded machinery must not go inert, and
// the saturated p99 is bounded by a loose factor.
func TestCheckPerfBaselineSoak(t *testing.T) {
	dir := t.TempDir()
	base := perfReport{Name: "soak", Points: []perfPoint{{
		ShedRate: 0.40, DegradedRate: 0.15, P99Ns: 4e6,
	}}}
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_soak.json"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := func(shed, degraded float64, p99 int64) perfReport {
		return perfReport{Name: "soak", Points: []perfPoint{{
			ShedRate: shed, DegradedRate: degraded, P99Ns: p99,
		}}}
	}
	if err := checkPerfBaseline(dir, fresh(0.55, 0.10, 8e6)); err != nil {
		t.Fatalf("in-bounds soak flagged: %v", err)
	}
	if err := checkPerfBaseline(dir, fresh(0.70, 0.10, 4e6)); err == nil {
		t.Fatal("shed-rate jump past slack not flagged")
	}
	if err := checkPerfBaseline(dir, fresh(0.40, 0, 4e6)); err == nil {
		t.Fatal("inert degraded machinery not flagged")
	}
	if err := checkPerfBaseline(dir, fresh(0.40, 0.15, 30e6)); err == nil {
		t.Fatal("p99 collapse past factor not flagged")
	}
	// The rate gates are soak-specific: other entries with zero soak fields
	// never trip them.
	other := perfReport{Name: "tea", Points: []perfPoint{{Parallelism: 1, AllocsPerOp: 10}}}
	rawTea, err := json.Marshal(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_tea.json"), rawTea, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkPerfBaseline(dir, other); err != nil {
		t.Fatalf("non-soak entry tripped soak gates: %v", err)
	}
}

// TestCheckPerfBaselineRouter pins the router half of the gate: overhead and
// recovery times are bounded by factor+floor, and the hedge/peer-fill
// machinery must not go inert.
func TestCheckPerfBaselineRouter(t *testing.T) {
	dir := t.TempDir()
	base := perfReport{Name: "router", Points: []perfPoint{{
		Parallelism: 1, RouterOverheadNs: 100_000,
		FailoverRecoveryNs: 50e6, RestabilizeNs: 80e6,
		Hedged: 5, PeerFills: 1,
	}}}
	raw, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_router.json"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := func(mut func(*perfPoint)) perfReport {
		p := base.Points[0]
		mut(&p)
		return perfReport{Name: "router", Points: []perfPoint{p}}
	}
	if err := checkPerfBaseline(dir, fresh(func(p *perfPoint) {})); err != nil {
		t.Fatalf("identical router point flagged: %v", err)
	}
	// Past the factor but under the absolute floor: jitter, not a regression.
	if err := checkPerfBaseline(dir, fresh(func(p *perfPoint) { p.RouterOverheadNs = 290_000 })); err != nil {
		t.Fatalf("sub-floor overhead growth flagged: %v", err)
	}
	if err := checkPerfBaseline(dir, fresh(func(p *perfPoint) { p.RouterOverheadNs = 900_000 })); err == nil {
		t.Fatal("9x routing-overhead blow-up not flagged")
	}
	if err := checkPerfBaseline(dir, fresh(func(p *perfPoint) { p.FailoverRecoveryNs = 600e6 })); err == nil {
		t.Fatal("failover-recovery collapse not flagged")
	}
	if err := checkPerfBaseline(dir, fresh(func(p *perfPoint) { p.RestabilizeNs = 900e6 })); err == nil {
		t.Fatal("restabilize collapse not flagged")
	}
	if err := checkPerfBaseline(dir, fresh(func(p *perfPoint) { p.Hedged = 0 })); err == nil {
		t.Fatal("inert hedging not flagged")
	}
	if err := checkPerfBaseline(dir, fresh(func(p *perfPoint) { p.PeerFills = 0 })); err == nil {
		t.Fatal("inert peer fills not flagged")
	}
}
