package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseParallelismList(t *testing.T) {
	got, err := parseParallelismList("1, 4,8")
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 8 {
		t.Fatalf("parseParallelismList: %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "x", "-2"} {
		if _, err := parseParallelismList(bad); err == nil {
			t.Errorf("%q should be rejected", bad)
		}
	}
}

// TestPerfWritesBenchJSON runs the -perf mode at a tiny scale and checks
// every estimator gets a parseable BENCH_<name>.json with the fields the
// perf-trajectory tooling relies on.
func TestPerfWritesBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks")
	}
	dir := t.TempDir()
	err := run([]string{
		"-perf", "-parallel", "2", "-perf-nodes", "1000", "-bench-dir", dir, "-v=false",
	}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	slugs := make([]string, 0, len(perfMethods)+1)
	for _, m := range perfMethods {
		slugs = append(slugs, m.slug)
	}
	slugs = append(slugs, "serve")
	for _, slug := range slugs {
		path := filepath.Join(dir, "BENCH_"+slug+".json")
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing bench JSON: %v", err)
		}
		var rep perfReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			t.Fatalf("%s: bad JSON: %v", path, err)
		}
		if rep.Name != slug || len(rep.Points) != 1 {
			t.Fatalf("%s: unexpected report %+v", path, rep)
		}
		p := rep.Points[0]
		if p.Parallelism != 2 || p.NsPerOp <= 0 || p.Iterations <= 0 {
			t.Fatalf("%s: unexpected point %+v", path, p)
		}
		if slug != "serve" {
			if p.WalkPhaseShare <= 0 || p.WalkPhaseShare > 1 {
				t.Fatalf("%s: walk share out of range: %v", path, p.WalkPhaseShare)
			}
			if p.RandomWalks == 0 {
				t.Fatalf("%s: walk stage did not run; the perf point monitors nothing", path)
			}
		}
	}

	// The update entry measures query throughput under a live background
	// writer; its point is always serial and must record the writer's work.
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_update.json"))
	if err != nil {
		t.Fatalf("missing update bench JSON: %v", err)
	}
	var rep perfReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("BENCH_update.json: bad JSON: %v", err)
	}
	if rep.Name != "update" || len(rep.Points) != 1 {
		t.Fatalf("BENCH_update.json: unexpected report %+v", rep)
	}
	p := rep.Points[0]
	if p.Parallelism != 1 || p.NsPerOp <= 0 || p.QueriesPerSec <= 0 {
		t.Fatalf("BENCH_update.json: unexpected point %+v", p)
	}
	if p.UpdatesApplied == 0 {
		t.Fatal("BENCH_update.json: background writer applied no update batches; the point measured a static graph")
	}
}

// TestCheckPerfBaseline pins the CI regression gate: a fresh report passes
// against a matching baseline, fails on a >2x allocs_per_op blow-up above
// the absolute floor, and tolerates missing baselines and parallelism points.
func TestCheckPerfBaseline(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, allocs int64) {
		rep := perfReport{Name: name, Points: []perfPoint{{Parallelism: 1, AllocsPerOp: allocs}}}
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "BENCH_"+name+".json"), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("tea", 100)

	fresh := func(allocs int64) perfReport {
		return perfReport{Name: "tea", Points: []perfPoint{{Parallelism: 1, AllocsPerOp: allocs}}}
	}
	if err := checkPerfBaseline(dir, fresh(150)); err != nil {
		t.Fatalf("within-budget point flagged: %v", err)
	}
	if err := checkPerfBaseline(dir, fresh(300)); err == nil {
		t.Fatal("3x allocs regression not flagged")
	}
	// Points and files absent from the baseline are not failures.
	if err := checkPerfBaseline(dir, perfReport{Name: "tea", Points: []perfPoint{{Parallelism: 8, AllocsPerOp: 1e6}}}); err != nil {
		t.Fatalf("unknown parallelism point flagged: %v", err)
	}
	if err := checkPerfBaseline(dir, perfReport{Name: "nonexistent"}); err != nil {
		t.Fatalf("missing baseline file flagged: %v", err)
	}
	// Near-zero baselines tolerate small absolute jitter even past 2x.
	write("serve", 10)
	if err := checkPerfBaseline(dir, perfReport{Name: "serve", Points: []perfPoint{{Parallelism: 1, AllocsPerOp: 40}}}); err != nil {
		t.Fatalf("sub-floor jitter flagged: %v", err)
	}
}

// TestCheckPerfBaselineBytes pins the bytes_per_op half of the gate: a >2x
// heap-bytes blow-up above the absolute floor fails, within-budget growth
// and sub-floor jitter pass, and a zero-bytes baseline (older JSON without
// the field) never trips.
func TestCheckPerfBaselineBytes(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, allocs, bytesPerOp int64) {
		rep := perfReport{Name: name, Points: []perfPoint{{Parallelism: 1, AllocsPerOp: allocs, BytesPerOp: bytesPerOp}}}
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "BENCH_"+name+".json"), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fresh := func(bytesPerOp int64) perfReport {
		return perfReport{Name: "tea", Points: []perfPoint{{Parallelism: 1, AllocsPerOp: 100, BytesPerOp: bytesPerOp}}}
	}
	write("tea", 100, 1<<20)
	if err := checkPerfBaseline(dir, fresh(3<<19)); err != nil {
		t.Fatalf("1.5x bytes growth flagged: %v", err)
	}
	if err := checkPerfBaseline(dir, fresh(3<<20)); err == nil {
		t.Fatal("3x bytes_per_op regression not flagged")
	}
	// Small absolute growth below the floor passes even past 2x.
	write("tea", 100, 1<<10)
	if err := checkPerfBaseline(dir, fresh(16<<10)); err != nil {
		t.Fatalf("sub-floor bytes jitter flagged: %v", err)
	}
	// Legacy baseline without bytes_per_op never trips the bytes gate.
	write("tea", 100, 0)
	if err := checkPerfBaseline(dir, fresh(1<<30)); err != nil {
		t.Fatalf("zero-bytes baseline flagged: %v", err)
	}
}
