package main

import (
	"context"
	"fmt"
	"testing"
	"time"

	"hkpr"
	"hkpr/internal/core"
	"hkpr/internal/graph"
	"hkpr/internal/router"
	"hkpr/internal/serve"
)

// perfMeasureRouter measures the replica tier for BENCH_router.json: the
// routed-vs-direct cache-hit overhead (the per-query tax of the ring walk,
// health filtering and hedging machinery), crash-to-answer failover recovery,
// and restart-to-reconverged restabilization, on a 3-replica router whose
// replicas share the benchmark graph.  The hedge delay is pinned to its floor
// so every routed query pays the full hedge spawn + bit-identity audit — the
// worst-case routing tax, and the proof the hedge path engages.
func perfMeasureRouter(g *hkpr.Graph, opts hkpr.Options) (perfPoint, error) {
	engCfg := serve.Config{Workers: 1, Parallelism: 1}
	factory := func(int) (*serve.Engine, error) {
		// Each replica gets its own Dynamic overlay over the shared immutable
		// base — the same topology and estimator seed everywhere is what makes
		// replica answers bit-identical.
		dyn := graph.NewDynamic(g, graph.DynamicOptions{CompactThreshold: -1})
		est, err := core.NewEstimator(dyn, opts)
		if err != nil {
			return nil, err
		}
		return serve.New(est, engCfg)
	}
	rt, err := router.New(router.Config{
		Replicas:       3,
		Factory:        factory,
		HealthInterval: 2 * time.Millisecond,
		HedgeQuantile:  0.5,
		HedgeMin:       time.Nanosecond,
		HedgeMax:       time.Nanosecond,
	})
	if err != nil {
		return perfPoint{}, err
	}
	defer rt.Close()

	// The direct baseline: the identical engine construction, queried without
	// the router in front.
	direct, err := factory(-1)
	if err != nil {
		return perfPoint{}, err
	}
	defer direct.Close()

	ctx := context.Background()
	req := serve.Request{Seed: 7, Method: "tea"}

	// Warm both paths so the measured loop is pure cache hit: the routed
	// warm-up also lets the hedge replica compute and cache its copy.
	if _, err := direct.Do(ctx, req); err != nil {
		return perfPoint{}, err
	}
	for i := 0; i < 4; i++ {
		if _, err := rt.Do(ctx, req); err != nil {
			return perfPoint{}, err
		}
	}

	var benchErr error
	resDirect := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := direct.Do(ctx, req); err != nil {
				benchErr = err
				b.FailNow()
			}
		}
	})
	if benchErr != nil {
		return perfPoint{}, benchErr
	}
	resRouted := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rt.Do(ctx, req); err != nil {
				benchErr = err
				b.FailNow()
			}
		}
	})
	if benchErr != nil {
		return perfPoint{}, benchErr
	}
	if resDirect.N == 0 || resRouted.N == 0 {
		return perfPoint{}, fmt.Errorf("benchmark did not run")
	}

	// Failover recovery: crash the benchmark seed's ring owner and time until
	// the tier answers the seed again (inline markDown + reroute — no health
	// probe on the critical path).
	owner := rt.Owner(req.Seed)
	failoverStart := time.Now()
	if err := rt.Crash(owner); err != nil {
		return perfPoint{}, err
	}
	var failoverNs int64
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := rt.Do(ctx, req); err == nil {
			failoverNs = time.Since(failoverStart).Nanoseconds()
			break
		}
		if time.Now().After(deadline) {
			return perfPoint{}, fmt.Errorf("no answer within 10s of crashing replica %d", owner)
		}
		time.Sleep(200 * time.Microsecond)
	}

	// Restabilization: restart the owner and time until routing reconverges
	// on it (factory rebuild + journal replay + the health view recovering).
	restabStart := time.Now()
	if err := rt.Restart(owner); err != nil {
		return perfPoint{}, err
	}
	var restabilizeNs int64
	for {
		if rt.Health(owner) == router.HealthHealthy && rt.Route(req.Seed)[0] == owner {
			restabilizeNs = time.Since(restabStart).Nanoseconds()
			break
		}
		if time.Now().After(deadline) {
			return perfPoint{}, fmt.Errorf("routing did not reconverge on replica %d within deadline", owner)
		}
		time.Sleep(200 * time.Microsecond)
	}
	// One more routed query: the restarted owner is cold and must warm from a
	// ring neighbor's cache, engaging the peer-fill path the entry reports.
	if _, err := rt.Do(ctx, req); err != nil {
		return perfPoint{}, err
	}

	snap := rt.Snapshot()
	routedNs := resRouted.NsPerOp()
	directNs := resDirect.NsPerOp()
	overhead := routedNs - directNs
	if overhead < 0 {
		// Scheduler jitter can rank a µs-scale routed hit below the direct
		// one; clamp so the trajectory reads as "no measurable overhead".
		overhead = 0
	}
	return perfPoint{
		Parallelism:        1,
		NsPerOp:            max64(routedNs, 1),
		QueriesPerSec:      1e9 / float64(max64(routedNs, 1)),
		Iterations:         resRouted.N,
		DirectNsPerOp:      directNs,
		RouterOverheadNs:   overhead,
		FailoverRecoveryNs: failoverNs,
		RestabilizeNs:      restabilizeNs,
		Hedged:             snap.Hedged,
		PeerFills:          snap.PeerFillTotal,
	}, nil
}
