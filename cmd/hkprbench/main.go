// Command hkprbench regenerates the paper's tables and figures on the
// synthetic dataset stand-ins.  Each experiment prints a plain-text table
// with the same rows/series the paper plots; EXPERIMENTS.md records how the
// shapes compare.
//
// Examples:
//
//	hkprbench -list
//	hkprbench -exp fig4 -scale small -seeds 20
//	hkprbench -exp all -scale test -out results.txt
//
// The -perf mode instead benchmarks raw cold-query latency of the core
// estimators at one or more walk-stage parallelism levels and writes a
// machine-readable BENCH_<name>.json per estimator (ns/op, allocs/op,
// walk-phase share, parallelism), which CI archives to track the repo's
// perf trajectory across PRs:
//
//	hkprbench -perf -parallel 1,4 -bench-dir bench-out
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hkpr/internal/bench"
	"hkpr/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hkprbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hkprbench", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "experiment id (see -list) or 'all'")
		list     = fs.Bool("list", false, "list available experiments and exit")
		scale    = fs.String("scale", "small", "dataset scale: test | small | full")
		seeds    = fs.Int("seeds", 0, "seeds per dataset (0 = scale default; the paper uses 50)")
		datasets = fs.String("datasets", "", "comma-separated dataset subset (default: per-experiment)")
		cacheDir = fs.String("cache", ".hkpr-cache", "directory for cached generated graphs ('' disables)")
		outPath  = fs.String("out", "", "also write the reports to this file")
		heat     = fs.Float64("t", 5, "heat constant t")
		verbose  = fs.Bool("v", true, "log progress to stderr")

		perf      = fs.Bool("perf", false, "run the estimator latency benchmark and write BENCH_<name>.json files")
		parallel  = fs.String("parallel", "1,4", "comma-separated walk-stage parallelism levels for -perf")
		benchDir  = fs.String("bench-dir", ".", "output directory for -perf JSON files")
		perfNodes = fs.Int("perf-nodes", 20000, "PLC graph size for -perf")
		perfBase  = fs.String("perf-baseline", "", "directory of committed BENCH_*.json baselines; fail on a >2x allocs_per_op or bytes_per_op regression")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *perf {
		levels, err := parseParallelismList(*parallel)
		if err != nil {
			return err
		}
		cfg := perfConfig{
			nodes:       *perfNodes,
			edgesPer:    5,
			parallelism: levels,
			outDir:      *benchDir,
			baselineDir: *perfBase,
		}
		if *verbose {
			cfg.log = os.Stderr
		}
		return runPerf(cfg)
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Fprintf(stdout, "%-10s %-28s %s\n", e.ID, e.PaperRef, e.Title)
		}
		return nil
	}

	cfg := bench.Config{
		Scale:           dataset.Scale(*scale),
		CacheDir:        *cacheDir,
		SeedsPerDataset: *seeds,
		Heat:            *heat,
	}
	if *datasets != "" {
		cfg.Datasets = splitComma(*datasets)
	}
	if *verbose {
		cfg.Log = os.Stderr
	}

	var reports []*bench.Report
	if *exp == "all" {
		all, err := bench.RunAll(cfg)
		if err != nil {
			return err
		}
		reports = all
	} else {
		e, err := bench.Lookup(*exp)
		if err != nil {
			return err
		}
		rep, err := e.Run(cfg)
		if err != nil {
			return err
		}
		reports = []*bench.Report{rep}
	}

	writers := []io.Writer{stdout}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		writers = append(writers, f)
	}
	w := io.MultiWriter(writers...)
	for _, rep := range reports {
		rep.Format(w)
	}
	return nil
}

func splitComma(s string) []string {
	var out []string
	cur := ""
	for _, c := range s {
		if c == ',' {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
			continue
		}
		cur += string(c)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
