package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table7", "fig4", "fig9", "ablation"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list output missing %s", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-exp", "table7", "-scale", "test", "-seeds", "2",
		"-datasets", "plc,3d-grid", "-cache", "", "-v=false",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "table7") || !strings.Contains(out.String(), "PLC") {
		t.Errorf("unexpected output:\n%s", out.String())
	}
}

func TestRunWritesOutputFile(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "report.txt")
	var out bytes.Buffer
	err := run([]string{
		"-exp", "fig2", "-scale", "test", "-seeds", "1",
		"-datasets", "plc", "-cache", "", "-out", outPath, "-v=false",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fig2") {
		t.Error("stdout missing report")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "fig42", "-v=false"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestSplitComma(t *testing.T) {
	got := splitComma("a,b,,c")
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("splitComma: %v", got)
	}
	if splitComma("") != nil {
		t.Error("empty string should return nil")
	}
}
