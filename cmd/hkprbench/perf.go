package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"hkpr"
	"hkpr/internal/chaos"
)

// The -perf mode tracks the repo's raw query-latency trajectory across PRs:
// for each core estimator it runs a Go benchmark (via testing.Benchmark) of
// cold queries on a generated walk-heavy PLC graph at each requested
// parallelism, measures the walk-phase share from the estimator's own Stats,
// and writes one machine-readable BENCH_<name>.json per estimator.  CI
// uploads these as artifacts so regressions are visible in diffs between
// runs.

// perfConfig parameterizes one -perf run.
type perfConfig struct {
	nodes       int
	edgesPer    int
	parallelism []int
	outDir      string
	// baselineDir, when non-empty, holds committed BENCH_<name>.json files
	// the fresh measurements are compared against; a point whose
	// allocs_per_op (or bytes_per_op) regresses by more than its factor
	// fails the run (after all files are written, so artifacts survive for
	// diffing).
	baselineDir string
	log         io.Writer
}

// allocsRegressionFactor is the allowed multiplicative slack between a
// baseline point's allocs_per_op and a fresh measurement before the -perf
// run fails.  Allocation counts are near-deterministic, but pool warm-up is
// amortized over the benchmark's iteration count, which varies by machine.
const allocsRegressionFactor = 2.0

// allocsRegressionFloor ignores regressions below this absolute count, so
// near-zero baselines (the whole point of the workspace hot path) don't turn
// a 5→11 allocs jitter into a CI failure.
const allocsRegressionFloor = 64

// bytesRegressionFactor is the allowed multiplicative slack between a
// baseline point's bytes_per_op and a fresh measurement.  Heap bytes track
// the flat score-vector representation (one support-sized slab per query);
// a >2x growth means a defensive copy or a map crept back into the hot path.
const bytesRegressionFactor = 2.0

// bytesRegressionFloor ignores byte regressions below this absolute growth
// (support sizes vary a little run to run; 64 KiB is far above that noise
// and far below any reintroduced O(support) copy on the bench graph).
const bytesRegressionFloor = 64 << 10

// perfPoint is one (estimator, parallelism) measurement.  For the batch
// entry, BatchK is the number of seeds per EstimateMany call and every
// per-op figure (ns, allocs, bytes) is per *query* — the batched call's cost
// divided by BatchK — so the regression gate and cross-k comparisons read the
// amortization directly.
type perfPoint struct {
	Parallelism    int     `json:"parallelism"`
	BatchK         int     `json:"batch_k,omitempty"`
	NsPerOp        int64   `json:"ns_per_op"`
	AllocsPerOp    int64   `json:"allocs_per_op"`
	BytesPerOp     int64   `json:"bytes_per_op"`
	QueriesPerSec  float64 `json:"queries_per_sec,omitempty"`
	WalkPhaseShare float64 `json:"walk_phase_share"`
	PushPhaseShare float64 `json:"push_phase_share"`
	RandomWalks    int64   `json:"random_walks"`
	WalkShards     int     `json:"walk_shards"`
	PushChunks     int64   `json:"push_chunks"`
	Iterations     int     `json:"iterations"`
	// Update-entry extras: batches a concurrent writer published during the
	// measurement, background compactions that ran, and the p99 of the
	// compaction publish pause (the lock-held window writers see).
	UpdatesApplied    int64 `json:"updates_applied,omitempty"`
	Compactions       int   `json:"compactions,omitempty"`
	CompactPauseP99Ns int64 `json:"compact_pause_p99_ns,omitempty"`
	// Soak-entry extras (BENCH_soak.json): client-observed outcome rates of
	// the deterministic chaos soak — the shed fraction of offered requests,
	// the fraction served in a degraded mode (stale or clamped), the engine's
	// execution-latency p99 under saturation, and the highest pressure tier
	// the overload controller reached.
	Requests     int64   `json:"requests,omitempty"`
	ShedRate     float64 `json:"shed_rate,omitempty"`
	DegradedRate float64 `json:"degraded_serve_rate,omitempty"`
	P99Ns        int64   `json:"p99_ns,omitempty"`
	MaxPressure  string  `json:"max_pressure,omitempty"`
	// Router-entry extras (BENCH_router.json): the replica tier's routing tax
	// and fault-recovery trajectory.  NsPerOp holds the routed cache-hit
	// latency; DirectNsPerOp the same query against a bare engine, so
	// RouterOverheadNs = routed − direct is the per-query cost of the ring
	// walk, health filtering and hedging machinery.  FailoverRecoveryNs is
	// crash-to-first-successful-answer on a seed the crashed replica owned;
	// RestabilizeNs is restart-to-routing-reconverged (the health loop
	// re-promoting the owner).  Hedged and PeerFills echo the router counters
	// so the entry proves both paths actually engaged.
	DirectNsPerOp      int64 `json:"direct_ns_per_op,omitempty"`
	RouterOverheadNs   int64 `json:"router_overhead_ns,omitempty"`
	FailoverRecoveryNs int64 `json:"failover_recovery_ns,omitempty"`
	RestabilizeNs      int64 `json:"restabilize_ns,omitempty"`
	Hedged             int64 `json:"hedged,omitempty"`
	PeerFills          int64 `json:"peer_fills,omitempty"`
}

// perfReport is the BENCH_<name>.json payload.
type perfReport struct {
	Name       string      `json:"name"`
	Graph      string      `json:"graph"`
	Nodes      int         `json:"nodes"`
	Edges      int64       `json:"edges"`
	Options    string      `json:"options"`
	Points     []perfPoint `json:"points"`
	GoMaxProcs int         `json:"gomaxprocs"`
	Timestamp  string      `json:"timestamp"`
}

// perfMethods are the estimators tracked by -perf.  The file-name slug avoids
// the '+' that MethodTEAPlus carries.  Each method tweaks the shared options
// so the stage its parallelism points monitor actually dominates: TEA+ would
// otherwise early-terminate during its budgeted push (walk share 0% at every
// P), so a hop cap of 1 (tiny C) stops its push almost immediately; TEA gets
// a loose rmax for the same reason.  "teapush" is the push-phase counterpart:
// TEA at its default tight rmax is push-dominated, so its P trajectory tracks
// the chunked parallel frontier scans rather than the walk shards.
var perfMethods = []struct {
	slug   string
	method hkpr.Method
	tune   func(hkpr.Options) hkpr.Options
}{
	{"teaplus", hkpr.MethodTEAPlus, func(o hkpr.Options) hkpr.Options { o.C = 1e-3; return o }},
	{"tea", hkpr.MethodTEA, func(o hkpr.Options) hkpr.Options { o.RmaxScale = 20; return o }},
	{"teapush", hkpr.MethodTEA, func(o hkpr.Options) hkpr.Options { return o }},
}

// runPerf executes the -perf mode and writes one JSON file per estimator
// (plus BENCH_serve.json for the full serving hot path).  With a baseline
// directory configured it then fails on allocs_per_op regressions.
func runPerf(cfg perfConfig) error {
	g, err := hkpr.GeneratePLC(cfg.nodes, cfg.edgesPer, 0.5, 13)
	if err != nil {
		return err
	}
	opts := hkpr.Options{
		T: 5, EpsRel: 0.5, Delta: 1 / float64(g.N()), FailureProb: 1e-6,
		Seed: 1,
	}

	if err := os.MkdirAll(cfg.outDir, 0o755); err != nil {
		return err
	}
	var regressions []error
	finish := func(rep perfReport) error {
		// Compare before writing: with -bench-dir and -perf-baseline pointing
		// at the same directory the fresh file would otherwise clobber the
		// baseline first and the gate would compare it against itself.
		if cfg.baselineDir != "" {
			if err := checkPerfBaseline(cfg.baselineDir, rep); err != nil {
				regressions = append(regressions, err)
			}
		}
		path := filepath.Join(cfg.outDir, "BENCH_"+rep.Name+".json")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	for _, m := range perfMethods {
		mOpts := m.tune(opts)
		rep := perfReport{
			Name:       m.slug,
			Graph:      fmt.Sprintf("plc-n%d-m%d", cfg.nodes, cfg.edgesPer),
			Nodes:      g.N(),
			Edges:      g.M(),
			Options:    fmt.Sprintf("t=%g eps=%g delta=%.3g rmax-scale=%g c=%g", mOpts.T, mOpts.EpsRel, mOpts.Delta, mOpts.RmaxScale, mOpts.C),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
		}
		for _, p := range cfg.parallelism {
			point, err := perfMeasure(g, m.method, mOpts, p)
			if err != nil {
				return fmt.Errorf("perf %s P=%d: %w", m.slug, p, err)
			}
			rep.Points = append(rep.Points, point)
			if cfg.log != nil {
				fmt.Fprintf(cfg.log, "perf %-8s P=%d  %.2f ms/op  %d allocs/op  walk-share %.0f%%  (%d iters)\n",
					m.slug, p, float64(point.NsPerOp)/1e6, point.AllocsPerOp, 100*point.WalkPhaseShare, point.Iterations)
			}
		}
		if err := finish(rep); err != nil {
			return err
		}
	}

	// The serve entry measures the full serving hot path — admission, CPU
	// gate, pooled workspace, estimator, result materialization — on the
	// same graph, with the result cache disabled so every iteration
	// executes.  Its allocs_per_op is the acceptance metric of the
	// zero-allocation workspace work.
	serveRep := perfReport{
		Name:       "serve",
		Graph:      fmt.Sprintf("plc-n%d-m%d", cfg.nodes, cfg.edgesPer),
		Nodes:      g.N(),
		Edges:      g.M(),
		Options:    fmt.Sprintf("t=%g eps=%g delta=%.3g method=tea nocache", opts.T, opts.EpsRel, opts.Delta),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	for _, p := range cfg.parallelism {
		point, err := perfMeasureServe(g, opts, p)
		if err != nil {
			return fmt.Errorf("perf serve P=%d: %w", p, err)
		}
		serveRep.Points = append(serveRep.Points, point)
		if cfg.log != nil {
			fmt.Fprintf(cfg.log, "perf %-8s P=%d  %.2f ms/op  %d allocs/op  (%d iters)\n",
				"serve", p, float64(point.NsPerOp)/1e6, point.AllocsPerOp, point.Iterations)
		}
	}
	if err := finish(serveRep); err != nil {
		return err
	}

	// The batch entry measures the multi-source amortization: EstimateMany
	// over k seeds at a time, serial, TEA (push-dominated at its default
	// tight rmax, so the shared frontier scan is what k amortizes).  The
	// k=1 point is the unbatched baseline — the single-query Estimate API a
	// client without a batching window issues — so queries/sec at k=8 vs
	// k=1 reads the end-to-end speedup of turning batching on.  Every
	// per-op figure is per query.
	batchRep := perfReport{
		Name:       "batch",
		Graph:      fmt.Sprintf("plc-n%d-m%d", cfg.nodes, cfg.edgesPer),
		Nodes:      g.N(),
		Edges:      g.M(),
		Options:    fmt.Sprintf("t=%g eps=%g delta=%.3g method=tea batched", opts.T, opts.EpsRel, opts.Delta),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	for _, k := range []int{1, 8, 64} {
		point, err := perfMeasureBatch(g, opts, k)
		if err != nil {
			return fmt.Errorf("perf batch k=%d: %w", k, err)
		}
		batchRep.Points = append(batchRep.Points, point)
		if cfg.log != nil {
			fmt.Fprintf(cfg.log, "perf %-8s k=%-2d %.2f ms/query  %d allocs/query  %.1f queries/sec  (%d iters)\n",
				"batch", k, float64(point.NsPerOp)/1e6, point.AllocsPerOp, point.QueriesPerSec, point.Iterations)
		}
	}
	if err := finish(batchRep); err != nil {
		return err
	}

	// The update entry measures the live-update serve path: sustained query
	// throughput through an engine over a Dynamic graph while a background
	// writer keeps publishing edge-toggle batches (each remove+add pair is two
	// epochs), with background compaction folding the delta overlay back into
	// CSR.  Its allocs_per_op guards the snapshot-resolution hot path, and
	// compact_pause_p99_ns tracks the writer-visible compaction pause.
	updateRep := perfReport{
		Name:       "update",
		Graph:      fmt.Sprintf("plc-n%d-m%d", cfg.nodes, cfg.edgesPer),
		Nodes:      g.N(),
		Edges:      g.M(),
		Options:    fmt.Sprintf("t=%g eps=%g delta=%.3g method=tea nocache live-updates", opts.T, opts.EpsRel, opts.Delta),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	point, err := perfMeasureUpdate(g, opts)
	if err != nil {
		return fmt.Errorf("perf update: %w", err)
	}
	updateRep.Points = append(updateRep.Points, point)
	if cfg.log != nil {
		fmt.Fprintf(cfg.log, "perf %-8s P=%d  %.2f ms/op  %d allocs/op  %.1f queries/sec  %d updates  %d compactions  pause-p99 %.2fms  (%d iters)\n",
			"update", point.Parallelism, float64(point.NsPerOp)/1e6, point.AllocsPerOp,
			point.QueriesPerSec, point.UpdatesApplied, point.Compactions,
			float64(point.CompactPauseP99Ns)/1e6, point.Iterations)
	}
	if err := finish(updateRep); err != nil {
		return err
	}

	// The soak entry runs the deterministic chaos harness: seeded 32-way
	// traffic against a 2-worker engine (better than 2x its admission
	// capacity) with concurrent update writers and injected execution stalls,
	// then records the overload-robustness trajectory — shed rate,
	// degraded-serve rate, and execution p99 under saturation.
	soakPoint, soakCfg, err := perfMeasureSoak()
	if err != nil {
		return fmt.Errorf("perf soak: %w", err)
	}
	soakRep := perfReport{
		Name:  "soak",
		Graph: fmt.Sprintf("powerlaw-n%d (chaos)", soakCfg.Nodes),
		Nodes: soakCfg.Nodes,
		Options: fmt.Sprintf("seed=%d clients=%d queries=%d writers=%d fault-every=%d",
			soakCfg.Seed, soakCfg.Clients, soakCfg.QueriesPerClient, soakCfg.Writers, soakCfg.FaultEvery),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Points:     []perfPoint{soakPoint},
	}
	if cfg.log != nil {
		fmt.Fprintf(cfg.log, "perf %-8s %d requests  shed %.3f  degraded %.3f  p99 %.2fms  max-pressure %s\n",
			"soak", soakPoint.Requests, soakPoint.ShedRate, soakPoint.DegradedRate,
			float64(soakPoint.P99Ns)/1e6, soakPoint.MaxPressure)
	}
	if err := finish(soakRep); err != nil {
		return err
	}

	// The router entry measures the replica tier: routed-vs-direct cache-hit
	// overhead, crash-to-answer failover recovery, and restart-to-reconverged
	// restabilization on a 3-replica router over the same graph.
	routerPoint, err := perfMeasureRouter(g, opts)
	if err != nil {
		return fmt.Errorf("perf router: %w", err)
	}
	routerRep := perfReport{
		Name:       "router",
		Graph:      fmt.Sprintf("plc-n%d-m%d", cfg.nodes, cfg.edgesPer),
		Nodes:      g.N(),
		Edges:      g.M(),
		Options:    fmt.Sprintf("t=%g eps=%g delta=%.3g method=tea replicas=3 routed-vs-direct", opts.T, opts.EpsRel, opts.Delta),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Points:     []perfPoint{routerPoint},
	}
	if cfg.log != nil {
		fmt.Fprintf(cfg.log, "perf %-8s routed %.1fµs/op  direct %.1fµs/op  overhead %.1fµs  failover %.2fms  restabilize %.2fms  hedged %d  peer-fills %d\n",
			"router", float64(routerPoint.NsPerOp)/1e3, float64(routerPoint.DirectNsPerOp)/1e3,
			float64(routerPoint.RouterOverheadNs)/1e3, float64(routerPoint.FailoverRecoveryNs)/1e6,
			float64(routerPoint.RestabilizeNs)/1e6, routerPoint.Hedged, routerPoint.PeerFills)
	}
	if err := finish(routerRep); err != nil {
		return err
	}

	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "perf regression:", r)
		}
		return fmt.Errorf("perf: %d regression(s) against baseline in %s", len(regressions), cfg.baselineDir)
	}
	return nil
}

// routerOverheadFactor / routerOverheadFloorNs gate the routed-vs-direct
// cache-hit overhead against baseline: the tax of the ring walk and hedging
// machinery is a few microseconds, so only a growth beyond the factor AND the
// absolute floor (well above scheduler jitter on a shared CI box) fails.
const routerOverheadFactor = 5.0
const routerOverheadFloorNs = 200_000 // 200µs

// routerRecoveryFactor / routerRecoveryFloorNs bound failover recovery and
// routing restabilization against baseline — loose, to catch a collapse (a
// recovery that waits out a full health interval instead of failing over
// inline), not jitter.
const routerRecoveryFactor = 5.0
const routerRecoveryFloorNs = 250_000_000 // 250ms

// soakShedRateSlack is the absolute shed-rate growth tolerated against the
// committed soak baseline before the gate fails: outcome rates vary with
// scheduling, but a jump beyond this means admission capacity or the
// degraded modes regressed.
const soakShedRateSlack = 0.25

// soakP99Factor bounds the saturated-execution p99 against baseline.  It is
// deliberately loose (CI boxes vary wildly); it exists to catch an
// order-of-magnitude collapse, not jitter.
const soakP99Factor = 5.0

// perfMeasureSoak runs the chaos soak at its default seeded configuration and
// flattens the report into one perf point.
func perfMeasureSoak() (perfPoint, chaos.Config, error) {
	cfg := chaos.Default(42)
	rep, err := chaos.Run(cfg)
	if err != nil {
		return perfPoint{}, cfg, err
	}
	if err := rep.Err(); err != nil {
		return perfPoint{}, cfg, err
	}
	meanNs := int64(0)
	if rep.Requests > 0 {
		meanNs = rep.Elapsed.Nanoseconds() / rep.Requests
	}
	return perfPoint{
		NsPerOp:        max64(meanNs, 1),
		QueriesPerSec:  float64(rep.Requests) / rep.Elapsed.Seconds(),
		Iterations:     int(rep.Requests),
		Requests:       rep.Requests,
		UpdatesApplied: rep.UpdatesApplied,
		ShedRate:       rep.ShedRate,
		DegradedRate:   rep.DegradedRate,
		P99Ns:          int64(rep.P99MS * 1e6),
		MaxPressure:    rep.MaxPressure,
	}, cfg, nil
}

// checkPerfBaseline compares a fresh report against the committed baseline
// of the same name, failing on a >allocsRegressionFactor allocs_per_op
// regression at any matching parallelism.  A missing baseline file is not an
// error (new benchmarks need a first commit).
func checkPerfBaseline(dir string, rep perfReport) error {
	path := filepath.Join(dir, "BENCH_"+rep.Name+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var base perfReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	// Points are keyed by (parallelism, batch k): the batch entry holds
	// several k values at one parallelism.
	type pointKey struct{ parallelism, batchK int }
	baseByP := make(map[pointKey]perfPoint, len(base.Points))
	for _, p := range base.Points {
		baseByP[pointKey{p.Parallelism, p.BatchK}] = p
	}
	for _, p := range rep.Points {
		b, ok := baseByP[pointKey{p.Parallelism, p.BatchK}]
		if !ok {
			continue
		}
		limit := int64(float64(b.AllocsPerOp) * allocsRegressionFactor)
		if p.AllocsPerOp > limit && p.AllocsPerOp-b.AllocsPerOp > allocsRegressionFloor {
			return fmt.Errorf("%s P=%d k=%d: allocs_per_op %d exceeds %gx baseline %d",
				rep.Name, p.Parallelism, p.BatchK, p.AllocsPerOp, allocsRegressionFactor, b.AllocsPerOp)
		}
		byteLimit := int64(float64(b.BytesPerOp) * bytesRegressionFactor)
		if b.BytesPerOp > 0 && p.BytesPerOp > byteLimit && p.BytesPerOp-b.BytesPerOp > bytesRegressionFloor {
			return fmt.Errorf("%s P=%d k=%d: bytes_per_op %d exceeds %gx baseline %d",
				rep.Name, p.Parallelism, p.BatchK, p.BytesPerOp, bytesRegressionFactor, b.BytesPerOp)
		}
		// Soak-entry gates: the overload-robustness trajectory.  Shed rate may
		// only drift within an absolute slack, the degraded machinery must not
		// go inert (a baseline that served degraded responses but a fresh run
		// that served none means stale/clamped modes stopped engaging), and
		// the saturated p99 must stay within a loose factor.
		if rep.Name == "soak" {
			if p.ShedRate > b.ShedRate+soakShedRateSlack {
				return fmt.Errorf("soak: shed_rate %.3f exceeds baseline %.3f + %.2f slack",
					p.ShedRate, b.ShedRate, soakShedRateSlack)
			}
			if b.DegradedRate > 0.01 && p.DegradedRate == 0 {
				return fmt.Errorf("soak: degraded_serve_rate fell to 0 (baseline %.3f): stale/clamped modes no longer engage",
					b.DegradedRate)
			}
			if b.P99Ns > 0 && p.P99Ns > int64(float64(b.P99Ns)*soakP99Factor) {
				return fmt.Errorf("soak: saturated p99 %.2fms exceeds %gx baseline %.2fms",
					float64(p.P99Ns)/1e6, soakP99Factor, float64(b.P99Ns)/1e6)
			}
		}
		// Router-entry gates: the routing tax and the fault-recovery times
		// must not collapse, and the paths the entry exists to prove (hedging,
		// peer fills) must keep engaging.
		if rep.Name == "router" {
			if b.RouterOverheadNs > 0 && p.RouterOverheadNs > int64(float64(b.RouterOverheadNs)*routerOverheadFactor) &&
				p.RouterOverheadNs-b.RouterOverheadNs > routerOverheadFloorNs {
				return fmt.Errorf("router: overhead %.1fµs exceeds %gx baseline %.1fµs",
					float64(p.RouterOverheadNs)/1e3, routerOverheadFactor, float64(b.RouterOverheadNs)/1e3)
			}
			for _, rec := range []struct {
				label     string
				base, cur int64
			}{
				{"failover_recovery_ns", b.FailoverRecoveryNs, p.FailoverRecoveryNs},
				{"restabilize_ns", b.RestabilizeNs, p.RestabilizeNs},
			} {
				if rec.base > 0 && rec.cur > int64(float64(rec.base)*routerRecoveryFactor) &&
					rec.cur-rec.base > routerRecoveryFloorNs {
					return fmt.Errorf("router: %s %.2fms exceeds %gx baseline %.2fms",
						rec.label, float64(rec.cur)/1e6, routerRecoveryFactor, float64(rec.base)/1e6)
				}
			}
			if b.Hedged > 0 && p.Hedged == 0 {
				return fmt.Errorf("router: hedging went inert (baseline hedged %d, fresh 0)", b.Hedged)
			}
			if b.PeerFills > 0 && p.PeerFills == 0 {
				return fmt.Errorf("router: peer cache fills went inert (baseline %d, fresh 0)", b.PeerFills)
			}
		}
	}
	return nil
}

// perfMeasureBatch benchmarks one batch size, reporting per-query cost (the
// batched call's cost divided by k).  k=1 runs the single-query Estimate API
// — the unbatched baseline — while k>1 runs EstimateMany.
func perfMeasureBatch(g *hkpr.Graph, opts hkpr.Options, k int) (perfPoint, error) {
	opts.Parallelism = 1
	c, err := hkpr.NewClustererWithMethod(g, opts, hkpr.MethodTEA)
	if err != nil {
		return perfPoint{}, err
	}
	seeds := make([]hkpr.NodeID, k)
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j := range seeds {
				seeds[j] = hkpr.NodeID((i*k + j) % g.N())
			}
			if k == 1 {
				if _, err := c.Estimate(seeds[0], hkpr.Options{}); err != nil {
					benchErr = err
					b.FailNow()
				}
				continue
			}
			_, errs, err := c.EstimateMany(seeds, hkpr.Options{})
			if err != nil {
				benchErr = err
				b.FailNow()
			}
			for _, e := range errs {
				if e != nil {
					benchErr = e
					b.FailNow()
				}
			}
		}
	})
	if benchErr != nil {
		return perfPoint{}, benchErr
	}
	if res.N == 0 {
		return perfPoint{}, fmt.Errorf("benchmark did not run")
	}
	perQueryNs := res.NsPerOp() / int64(k)
	if perQueryNs == 0 {
		perQueryNs = 1
	}
	return perfPoint{
		Parallelism:   1,
		BatchK:        k,
		NsPerOp:       perQueryNs,
		AllocsPerOp:   res.AllocsPerOp() / int64(k),
		BytesPerOp:    res.AllocedBytesPerOp() / int64(k),
		QueriesPerSec: 1e9 / float64(perQueryNs),
		Iterations:    res.N,
	}, nil
}

// perfMeasureUpdate benchmarks uncached serial queries through an engine over
// a Dynamic graph while a background writer toggles base edges (one remove
// batch, one re-add batch, a short breath) through Engine.ApplyUpdates.  The
// small compaction threshold forces frequent background compactions so their
// publish pauses are actually sampled.
func perfMeasureUpdate(g *hkpr.Graph, opts hkpr.Options) (perfPoint, error) {
	// Threshold is low enough that even a GOMAXPROCS=1 CI box — where the
	// query worker crowds out the writer goroutine — accumulates several
	// compactions during the ~1s measurement.
	d := hkpr.NewDynamic(g, hkpr.DynamicOptions{CompactThreshold: 32})
	eng, err := hkpr.NewEngine(d, opts, hkpr.EngineConfig{
		Workers: 1, CacheBytes: -1, Parallelism: 1,
	})
	if err != nil {
		return perfPoint{}, err
	}
	defer eng.Close()
	ctx := context.Background()
	req := hkpr.ServeRequest{Seed: 7, Method: "tea", NoCache: true}
	if _, err := eng.Do(ctx, req); err != nil {
		return perfPoint{}, err
	}

	// Toggle edges spread across the graph; each stays absent only between
	// its own remove and re-add, so every batch validates.
	var toggles [][2]hkpr.NodeID
	snap := g.Snapshot()
	for u := hkpr.NodeID(0); u < hkpr.NodeID(g.N()) && len(toggles) < 32; u += 101 {
		if nbrs := snap.Neighbors(u); len(nbrs) > 1 {
			toggles = append(toggles, [2]hkpr.NodeID{u, nbrs[0]})
		}
	}
	if len(toggles) == 0 {
		return perfPoint{}, fmt.Errorf("no toggleable edges found")
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	var updates int64
	var updateErr error
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			e := toggles[i%len(toggles)]
			if _, err := eng.ApplyUpdates(hkpr.UpdateBatch{RemoveEdges: [][2]hkpr.NodeID{e}}); err != nil {
				updateErr = err
				return
			}
			if _, err := eng.ApplyUpdates(hkpr.UpdateBatch{AddEdges: [][2]hkpr.NodeID{e}}); err != nil {
				updateErr = err
				return
			}
			updates += 2
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := req
			r.Seed = hkpr.NodeID(i % g.N())
			if _, err := eng.Do(ctx, r); err != nil {
				benchErr = err
				b.FailNow()
			}
		}
	})
	close(stop)
	<-done
	d.WaitCompaction()
	if benchErr != nil {
		return perfPoint{}, benchErr
	}
	if updateErr != nil {
		return perfPoint{}, fmt.Errorf("background writer: %w", updateErr)
	}
	if res.N == 0 {
		return perfPoint{}, fmt.Errorf("benchmark did not run")
	}
	pauses := d.CompactionPauses()
	return perfPoint{
		Parallelism:       1,
		NsPerOp:           res.NsPerOp(),
		AllocsPerOp:       res.AllocsPerOp(),
		BytesPerOp:        res.AllocedBytesPerOp(),
		QueriesPerSec:     1e9 / float64(max64(res.NsPerOp(), 1)),
		Iterations:        res.N,
		UpdatesApplied:    updates,
		Compactions:       len(pauses),
		CompactPauseP99Ns: durationP99(pauses).Nanoseconds(),
	}, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// durationP99 returns the 99th-percentile entry (nearest-rank) of ds.
func durationP99(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := (99*len(s)+99)/100 - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

// perfMeasureServe benchmarks uncached queries through a serving engine at
// one per-query parallelism.
func perfMeasureServe(g *hkpr.Graph, opts hkpr.Options, parallelism int) (perfPoint, error) {
	eng, err := hkpr.NewEngine(g, opts, hkpr.EngineConfig{
		Workers: 1, CacheBytes: -1, Parallelism: parallelism,
	})
	if err != nil {
		return perfPoint{}, err
	}
	defer eng.Close()
	ctx := context.Background()
	req := hkpr.ServeRequest{Seed: 7, Method: "tea", NoCache: true}

	probe, err := eng.Do(ctx, req)
	if err != nil {
		return perfPoint{}, err
	}
	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := req
			r.Seed = hkpr.NodeID(i % g.N())
			if _, err := eng.Do(ctx, r); err != nil {
				benchErr = err
				b.FailNow()
			}
		}
	})
	if benchErr != nil {
		return perfPoint{}, benchErr
	}
	if res.N == 0 {
		return perfPoint{}, fmt.Errorf("benchmark did not run")
	}
	return perfPoint{
		Parallelism: parallelism,
		NsPerOp:     res.NsPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		RandomWalks: probe.Result.Stats.RandomWalks,
		WalkShards:  probe.Result.Stats.WalkShards,
		PushChunks:  probe.Result.Stats.PushChunks,
		Iterations:  res.N,
	}, nil
}

// perfMeasure benchmarks one estimator at one parallelism and extracts the
// walk-phase share from a representative query's Stats.
func perfMeasure(g *hkpr.Graph, method hkpr.Method, opts hkpr.Options, parallelism int) (perfPoint, error) {
	opts.Parallelism = parallelism
	c, err := hkpr.NewClustererWithMethod(g, opts, method)
	if err != nil {
		return perfPoint{}, err
	}

	// One instrumented query for the cost breakdown (outside the timing).
	probe, err := c.Estimate(7, hkpr.Options{})
	if err != nil {
		return perfPoint{}, err
	}
	walkShare, pushShare := 0.0, 0.0
	if total := probe.Stats.PushTime + probe.Stats.WalkTime; total > 0 {
		walkShare = float64(probe.Stats.WalkTime) / float64(total)
		pushShare = float64(probe.Stats.PushTime) / float64(total)
	}

	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.Estimate(hkpr.NodeID(i%g.N()), hkpr.Options{}); err != nil {
				benchErr = err
				b.FailNow()
			}
		}
	})
	if benchErr != nil {
		return perfPoint{}, benchErr
	}
	if res.N == 0 {
		return perfPoint{}, fmt.Errorf("benchmark did not run")
	}
	return perfPoint{
		Parallelism:    parallelism,
		NsPerOp:        res.NsPerOp(),
		AllocsPerOp:    res.AllocsPerOp(),
		BytesPerOp:     res.AllocedBytesPerOp(),
		WalkPhaseShare: walkShare,
		PushPhaseShare: pushShare,
		RandomWalks:    probe.Stats.RandomWalks,
		WalkShards:     probe.Stats.WalkShards,
		PushChunks:     probe.Stats.PushChunks,
		Iterations:     res.N,
	}, nil
}

// parseParallelismList parses a comma-separated list of parallelism values.
func parseParallelismList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad parallelism value %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty parallelism list")
	}
	return out, nil
}
