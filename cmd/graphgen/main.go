// Command graphgen generates the synthetic benchmark graphs used throughout
// the repository and writes them as edge lists or in the binary CSR format.
//
// Examples:
//
//	graphgen -type plc -n 30000 -m 5 -triad 0.5 -out plc.txt
//	graphgen -type grid3d -side 30 -out grid.bin -format binary
//	graphgen -type sbm -communities 40 -size 300 -in 48 -out-degree 12 -out orkut.txt
//	graphgen -type dataset -name twitter -scale small -out twitter.bin -format binary
package main

import (
	"flag"
	"fmt"
	"os"

	"hkpr/internal/dataset"
	"hkpr/internal/gen"
	"hkpr/internal/graph"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	var (
		typ       = fs.String("type", "plc", "generator: plc | grid3d | sbm | rmat | ba | er | lfr | dataset")
		out       = fs.String("out", "", "output path (required)")
		format    = fs.String("format", "edgelist", "output format: edgelist | binary")
		seed      = fs.Uint64("seed", 1, "RNG seed")
		n         = fs.Int("n", 10000, "number of nodes (plc, ba, er, lfr)")
		m         = fs.Int("m", 5, "edges per new node (plc, ba)")
		triad     = fs.Float64("triad", 0.5, "triad closure probability (plc)")
		p         = fs.Float64("p", 0.001, "edge probability (er)")
		side      = fs.Int("side", 20, "side length (grid3d)")
		comms     = fs.Int("communities", 20, "number of communities (sbm)")
		size      = fs.Int("size", 100, "community size (sbm)")
		inDeg     = fs.Float64("in", 12, "average intra-community degree (sbm)")
		outDeg    = fs.Float64("out-degree", 2, "average inter-community degree (sbm)")
		scale     = fs.Int("rmat-scale", 14, "log2 of node count (rmat)")
		edgeF     = fs.Float64("edge-factor", 16, "edges per node (rmat)")
		mu        = fs.Float64("mu", 0.2, "mixing parameter (lfr)")
		avgDeg    = fs.Float64("avg-degree", 10, "average degree (lfr)")
		dsName    = fs.String("name", "dblp", "dataset name (dataset type)")
		dsScale   = fs.String("scale", "small", "dataset scale: test | small | full (dataset type)")
		commsFile = fs.String("communities-out", "", "optional path to write ground-truth communities (sbm, lfr, dataset)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("missing -out path")
	}

	var (
		g      *graph.Graph
		assign gen.CommunityAssignment
		err    error
	)
	switch *typ {
	case "plc":
		g, err = gen.PowerlawCluster(*n, *m, *triad, *seed)
	case "grid3d":
		g, err = gen.Grid3D(*side, *side, *side)
	case "sbm":
		g, assign, err = gen.SBM(gen.SBMConfig{
			Communities: *comms, CommunitySize: *size, AvgInDegree: *inDeg, AvgOutDegree: *outDeg,
		}, *seed)
	case "rmat":
		g, err = gen.RMAT(gen.DefaultRMAT(*scale, *edgeF), *seed)
	case "ba":
		g, err = gen.BarabasiAlbert(*n, *m, *seed)
	case "er":
		g, err = gen.ErdosRenyi(*n, *p, *seed)
	case "lfr":
		g, assign, err = gen.LFR(gen.LFRConfig{
			Nodes: *n, AvgDegree: *avgDeg, MaxDegree: 10 * int(*avgDeg), DegreeExponent: 2.5,
			MinCommunitySize: 10, MaxCommunitySize: 10 * int(*avgDeg), Mu: *mu,
		}, *seed)
	case "dataset":
		var ds *dataset.Dataset
		ds, err = dataset.Load(*dsName, dataset.Scale(*dsScale), "")
		if err == nil {
			g = ds.Graph
			assign = ds.Communities
		}
	default:
		return fmt.Errorf("unknown generator type %q", *typ)
	}
	if err != nil {
		return err
	}

	switch *format {
	case "edgelist":
		err = graph.SaveEdgeListFile(*out, g)
	case "binary":
		err = graph.SaveBinaryFile(*out, g)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		return err
	}

	if *commsFile != "" && assign != nil {
		if err := writeCommunities(*commsFile, assign); err != nil {
			return err
		}
	}

	stats := g.ComputeStats()
	fmt.Printf("wrote %s: n=%d m=%d avg-degree=%.2f max-degree=%d\n",
		*out, stats.Nodes, stats.Edges, stats.AverageDegree, stats.MaxDegree)
	return nil
}

// writeCommunities writes one "node community" line per node with a
// ground-truth community.
func writeCommunities(path string, assign gen.CommunityAssignment) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	for v, c := range assign {
		if c < 0 {
			continue
		}
		if _, err := fmt.Fprintf(f, "%d %d\n", v, c); err != nil {
			return err
		}
	}
	return nil
}
