package main

import (
	"os"
	"path/filepath"
	"testing"

	"hkpr/internal/graph"
)

func TestGenerateEdgeList(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "plc.txt")
	err := run([]string{"-type", "plc", "-n", "500", "-m", "3", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.LoadEdgeListFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 500 {
		t.Errorf("n=%d", g.N())
	}
}

func TestGenerateBinaryAndCommunities(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "sbm.bin")
	commOut := filepath.Join(dir, "comms.txt")
	err := run([]string{
		"-type", "sbm", "-communities", "4", "-size", "25", "-in", "8", "-out-degree", "1",
		"-out", out, "-format", "binary", "-communities-out", commOut,
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.LoadBinaryFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 {
		t.Errorf("n=%d", g.N())
	}
	if _, err := os.Stat(commOut); err != nil {
		t.Errorf("communities file not written: %v", err)
	}
}

func TestGenerateAllTypes(t *testing.T) {
	dir := t.TempDir()
	cases := [][]string{
		{"-type", "grid3d", "-side", "5"},
		{"-type", "ba", "-n", "300", "-m", "3"},
		{"-type", "er", "-n", "300", "-p", "0.02"},
		{"-type", "rmat", "-rmat-scale", "8", "-edge-factor", "4"},
		{"-type", "lfr", "-n", "400", "-avg-degree", "8", "-mu", "0.2"},
		{"-type", "dataset", "-name", "plc", "-scale", "test"},
	}
	for i, extra := range cases {
		out := filepath.Join(dir, "g"+string(rune('a'+i))+".txt")
		args := append(extra, "-out", out)
		if err := run(args); err != nil {
			t.Errorf("case %v: %v", extra, err)
			continue
		}
		if _, err := graph.LoadEdgeListFile(out); err != nil {
			t.Errorf("case %v: output unreadable: %v", extra, err)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if err := run([]string{"-type", "plc"}); err == nil {
		t.Error("missing -out should error")
	}
	if err := run([]string{"-type", "bogus", "-out", filepath.Join(t.TempDir(), "x.txt")}); err == nil {
		t.Error("unknown type should error")
	}
	if err := run([]string{"-type", "plc", "-out", filepath.Join(t.TempDir(), "x.txt"), "-format", "bogus"}); err == nil {
		t.Error("unknown format should error")
	}
	if err := run([]string{"-type", "er", "-p", "2", "-out", filepath.Join(t.TempDir(), "x.txt")}); err == nil {
		t.Error("invalid generator parameters should error")
	}
}
