// Command hkprrouter fronts a fault-tolerant replica set over HTTP: one
// process hosting N in-process serving replicas (each a full engine with its
// own worker pool, admission queue and result cache over the same base
// graph), with queries consistent-hashed across them by (graph epoch, seed
// node).  It is the single-box deployment of the tier the paper's
// interactive-exploration scenario needs once one engine is not enough: the
// router health-checks replicas from their pressure tier and error taxonomy,
// fails over around crashed or shedding replicas with bounded Retry-After
// backoff, hedges slow queries against the next ring replica (duplicates are
// audited bit-identical off the request path — the determinism contract makes
// replicas interchangeable), and warms cold or restarted replicas from ring
// neighbors' caches instead of recomputing.
//
// Endpoints:
//
//	GET /healthz                 → 200 ok while at least one replica is live,
//	                               503 when the whole tier is down
//	GET /stats                   → graph + router + per-replica statistics
//	                               (JSON; includes each replica's health,
//	                               pressure tier and drain estimate)
//	GET /metrics                 → router metrics (Prometheus text format,
//	                               hkpr_router_* namespace with per-replica
//	                               labeled health/traffic series)
//	GET /cluster?seed=17         → local cluster of node 17, routed to the
//	                               seed's ring owner with failover + hedging;
//	                               same parameters and response shape as
//	                               hkprserver's /cluster (method, eps, topk,
//	                               sweepk, trace, nocache), so hkprquery
//	                               -server works against either
//	POST /update                 → apply one graph update batch to every live
//	                               replica as a new epoch (same JSON body as
//	                               hkprserver); the batch is journaled so
//	                               restarted replicas replay to the current
//	                               epoch
//	GET /route?seed=17           → routing debug: the seed's ring owner and
//	                               the candidate order under the current
//	                               health view
//
// Overload is reported exactly as hkprserver reports it — 503 with a
// Retry-After header — but only after the router has tried every live
// replica and backed off between rounds: a single shedding replica is a
// failover, not a client-visible error.  On SIGINT/SIGTERM every replica
// drains its admitted queries before the process exits.
//
// Router flags:
//
//	-replicas N        in-process replica count (default 3)
//	-hedge-quantile Q  latency quantile after which a hedged duplicate fires
//	                   at the next ring replica (default 0.95; negative
//	                   disables hedging)
//	-health-interval D background health-probe period (default 50ms)
//	-peer-neighbors N  ring successors probed for an already-cached response
//	                   when the primary misses (default 2; negative disables
//	                   peer cache fills)
//	-retry-rounds N    full failover passes before a query is shed (default 2)
//	-vnodes N          ring points per replica (default 64)
//
// Per-replica engine flags mirror hkprserver: -workers, -queue, -cache-mb,
// -timeout, -pressure-off, -compact-delta; estimator flags -t, -eps, -pf,
// -seed (all replicas share one RNG seed — that is what makes hedged
// duplicates and failover answers bit-identical).
//
// Example:
//
//	hkprrouter -graph twitter.bin -addr :8080 -replicas 4 -workers 4
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hkpr/internal/core"
	"hkpr/internal/graph"
	"hkpr/internal/router"
	"hkpr/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hkprrouter:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hkprrouter", flag.ContinueOnError)
	var (
		graphPath = fs.String("graph", "", "path to the graph (edge list or .bin)")
		addr      = fs.String("addr", ":8080", "listen address")

		replicas  = fs.Int("replicas", 3, "in-process serving replica count")
		hedgeQ    = fs.Float64("hedge-quantile", 0, "latency quantile after which a hedged duplicate fires (0 = 0.95, negative disables)")
		healthInt = fs.Duration("health-interval", 0, "background health-probe period (0 = 50ms)")
		peerNb    = fs.Int("peer-neighbors", 0, "ring successors probed for peer cache fills (0 = 2, negative disables)")
		retries   = fs.Int("retry-rounds", 0, "full failover passes before a query is shed (0 = 2)")
		vnodes    = fs.Int("vnodes", 0, "consistent-hash ring points per replica (0 = 64)")

		heat    = fs.Float64("t", 5, "heat constant t")
		epsRel  = fs.Float64("eps", 0.5, "relative error threshold εr")
		pf      = fs.Float64("pf", 1e-6, "failure probability")
		rngSeed = fs.Uint64("seed", 1, "estimator RNG seed shared by every replica (keeps replicas bit-identical)")

		workers   = fs.Int("workers", 0, "concurrent query executions per replica (0 = GOMAXPROCS)")
		queue     = fs.Int("queue", 0, "per-replica admission queue depth (0 = 4×workers)")
		cacheMB   = fs.Int("cache-mb", 64, "per-replica result cache budget in MiB (0 disables)")
		timeout   = fs.Duration("timeout", 10*time.Second, "per-query execution deadline (0 disables)")
		compactTh = fs.Int("compact-delta", 0, "compact the update delta overlay after this many operations (0 = library default, negative disables)")

		pressureOff = fs.Bool("pressure-off", false, "disable the per-replica overload pressure controller")
		drainTO     = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain: how long to let admitted queries finish before forcing close")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" {
		return fmt.Errorf("missing -graph path")
	}
	var (
		g   *graph.Graph
		err error
	)
	if strings.HasSuffix(*graphPath, ".bin") {
		g, err = graph.LoadBinaryFile(*graphPath)
	} else {
		g, err = graph.LoadEdgeListFile(*graphPath)
	}
	if err != nil {
		return err
	}
	cacheBytes := int64(*cacheMB) << 20
	if *cacheMB <= 0 {
		cacheBytes = -1
	}
	opts := core.Options{T: *heat, EpsRel: *epsRel, FailureProb: *pf, Seed: *rngSeed}
	engCfg := serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheBytes:     cacheBytes,
		DefaultTimeout: *timeout,
		Pressure:       serve.PressureConfig{Disabled: *pressureOff},
	}
	srv, err := newServer(g, *compactTh, opts, engCfg, router.Config{
		Replicas:          *replicas,
		VirtualNodes:      *vnodes,
		HealthInterval:    *healthInt,
		HedgeQuantile:     *hedgeQ,
		PeerFillNeighbors: *peerNb,
		RetryRounds:       *retries,
	})
	if err != nil {
		return err
	}
	defer srv.rt.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.routes()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	// Zero flag values mean "router default": log the effective settings.
	effHedgeQ, effHealthInt := *hedgeQ, *healthInt
	if effHedgeQ == 0 {
		effHedgeQ = router.DefaultHedgeQuantile
	}
	if effHealthInt == 0 {
		effHealthInt = router.DefaultHealthInterval
	}
	log.Printf("routing local clustering on %s (graph: n=%d m=%d, replicas=%d hedge-q=%.2f health-interval=%s)",
		*addr, g.N(), g.M(), srv.rt.Replicas(), effHedgeQ, effHealthInt)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		log.Printf("shutting down: draining admitted queries on every replica (timeout %s)", *drainTO)
		drainErr := srv.rt.Drain(*drainTO)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		return drainErr
	}
}

// server holds the long-lived router shared by all requests.
type server struct {
	rt *router.Router
}

// newServer builds the replica set over one shared base graph: every replica
// gets its own Dynamic overlay (replicas invalidate their own caches on
// updates) and its own engine, but the immutable base topology — and the
// estimator RNG seed — is common, which is what makes replica answers
// bit-identical and the tier reconciliation-free.
func newServer(g *graph.Graph, compactTh int, opts core.Options, engCfg serve.Config, rtCfg router.Config) (*server, error) {
	if opts.Delta == 0 {
		n := g.N()
		if n <= 1 {
			return nil, fmt.Errorf("graph too small for local clustering")
		}
		opts.Delta = 1 / float64(n)
	}
	rtCfg.Factory = func(id int) (*serve.Engine, error) {
		dyn := graph.NewDynamic(g, graph.DynamicOptions{CompactThreshold: compactTh})
		est, err := core.NewEstimator(dyn, opts)
		if err != nil {
			return nil, err
		}
		return serve.New(est, engCfg)
	}
	rt, err := router.New(rtCfg)
	if err != nil {
		return nil, err
	}
	return &server{rt: rt}, nil
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /cluster", s.handleCluster)
	mux.HandleFunc("GET /route", s.handleRoute)
	mux.HandleFunc("POST /update", s.handleUpdate)
	return mux
}

// graphSnap returns the current graph snapshot from the first live replica,
// or nil when the whole tier is down.
func (s *server) graphSnap() *graph.Snapshot {
	for id := 0; id < s.rt.Replicas(); id++ {
		if eng := s.rt.Engine(id); eng != nil {
			return eng.Graph()
		}
	}
	return nil
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.graphSnap() == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "no live replicas"})
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

type statsResponse struct {
	Nodes         int             `json:"nodes"`
	Edges         int64           `json:"edges"`
	AverageDegree float64         `json:"average_degree"`
	MaxDegree     int32           `json:"max_degree"`
	Router        router.Snapshot `json:"router"`
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	resp := statsResponse{Router: s.rt.Snapshot()}
	if snap := s.graphSnap(); snap != nil {
		resp.Nodes = snap.N()
		resp.Edges = snap.M()
		resp.AverageDegree = snap.AverageDegree()
		resp.MaxDegree = snap.MaxDegree()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.rt.WritePrometheus(w)
}

// clusterResponse mirrors hkprserver's response shape so clients (hkprquery
// -server among them) can point at either front interchangeably.
type clusterResponse struct {
	Seed        int64                   `json:"seed"`
	Method      string                  `json:"method"`
	Cluster     []int64                 `json:"cluster"`
	Size        int                     `json:"size"`
	Conductance float64                 `json:"conductance"`
	Scores      core.ScoreVector        `json:"scores,omitempty"`
	ElapsedMS   float64                 `json:"elapsed_ms"`
	QueueWaitMS float64                 `json:"queue_wait_ms"`
	Cached      bool                    `json:"cached"`
	Coalesced   bool                    `json:"coalesced"`
	Epoch       uint64                  `json:"epoch"`
	Parallelism int                     `json:"parallelism"`
	Pushes      int64                   `json:"push_operations"`
	Walks       int64                   `json:"random_walks"`
	Degraded    string                  `json:"degraded,omitempty"`
	Effective   *serve.EffectiveOptions `json:"effective,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *server) handleCluster(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	seedStr := q.Get("seed")
	if seedStr == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "missing seed parameter"})
		return
	}
	seed, err := strconv.ParseInt(seedStr, 10, 64)
	if err != nil || seed < 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "seed must be a node id in range"})
		return
	}
	if snap := s.graphSnap(); snap != nil && seed >= int64(snap.N()) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "seed must be a node id in range"})
		return
	}
	method := q.Get("method")
	topK := 0
	if tkStr := q.Get("topk"); tkStr != "" {
		tk, err := strconv.Atoi(tkStr)
		if err != nil || tk < 1 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "topk must be a positive integer"})
			return
		}
		topK = tk
	}
	sweepK := 0
	if skStr := q.Get("sweepk"); skStr != "" {
		sk, err := strconv.Atoi(skStr)
		if err != nil || sk < 1 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "sweepk must be a positive integer"})
			return
		}
		sweepK = sk
	}
	var query core.Options
	if epsStr := q.Get("eps"); epsStr != "" {
		eps, err := strconv.ParseFloat(epsStr, 64)
		if err != nil || eps <= 0 || eps > 1 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "eps must be in (0,1]"})
			return
		}
		query.EpsRel = eps
	}

	resp, err := s.rt.Do(r.Context(), serve.Request{
		Seed:    graph.NodeID(seed),
		Method:  method,
		Opts:    query,
		Sweep:   sweepK == 0,
		SweepK:  sweepK,
		TopK:    topK,
		NoCache: q.Get("nocache") != "",
	})
	if err != nil {
		status, msg := statusForError(err)
		if status == 0 {
			if r.Context().Err() != nil {
				return
			}
			status, msg = http.StatusInternalServerError, err.Error()
		}
		var oe *serve.OverloadedError
		if errors.As(err, &oe) && oe.RetryAfter > 0 {
			w.Header().Set("Retry-After", strconv.FormatInt(serve.RetryAfterSeconds(oe.RetryAfter), 10))
		}
		writeJSON(w, status, errorResponse{Error: msg})
		return
	}

	members := make([]int64, len(resp.Sweep.Cluster))
	for i, v := range resp.Sweep.Cluster {
		members[i] = int64(v)
	}
	var effective *serve.EffectiveOptions
	if resp.Degraded == serve.DegradedClamped {
		eff := resp.Effective
		effective = &eff
	}
	writeJSON(w, http.StatusOK, clusterResponse{
		Seed:        seed,
		Method:      resp.Method,
		Cluster:     members,
		Size:        len(members),
		Conductance: resp.Sweep.Conductance,
		Scores:      core.ScoreVector(resp.Top),
		ElapsedMS:   float64(resp.Elapsed.Microseconds()) / 1000,
		QueueWaitMS: float64(resp.QueueWait.Microseconds()) / 1000,
		Cached:      resp.Cached,
		Coalesced:   resp.Coalesced,
		Epoch:       resp.Epoch,
		Parallelism: resp.Parallelism,
		Pushes:      resp.Result.Stats.PushOperations,
		Walks:       resp.Result.Stats.RandomWalks,
		Degraded:    resp.Degraded,
		Effective:   effective,
	})
}

// routeResponse is the GET /route debug payload: where a seed's queries go
// under the current epoch and health view.
type routeResponse struct {
	Seed       int64    `json:"seed"`
	Epoch      uint64   `json:"epoch"`
	Owner      int      `json:"owner"`
	Candidates []int    `json:"candidates"`
	Health     []string `json:"health"`
}

func (s *server) handleRoute(w http.ResponseWriter, r *http.Request) {
	seedStr := r.URL.Query().Get("seed")
	seed, err := strconv.ParseInt(seedStr, 10, 64)
	if seedStr == "" || err != nil || seed < 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "seed must be a non-negative node id"})
		return
	}
	health := make([]string, s.rt.Replicas())
	for id := range health {
		health[id] = s.rt.Health(id).String()
	}
	writeJSON(w, http.StatusOK, routeResponse{
		Seed:       seed,
		Epoch:      s.rt.Epoch(),
		Owner:      s.rt.Owner(graph.NodeID(seed)),
		Candidates: s.rt.Route(graph.NodeID(seed)),
		Health:     health,
	})
}

// updateRequest is the POST /update JSON body, identical to hkprserver's.
type updateRequest struct {
	AddNodes    int               `json:"add_nodes"`
	AddEdges    [][2]graph.NodeID `json:"add_edges"`
	RemoveEdges [][2]graph.NodeID `json:"remove_edges"`
}

func (s *server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req updateRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad update body: " + err.Error()})
		return
	}
	res, err := s.rt.ApplyUpdates(graph.UpdateBatch{
		AddNodes:    req.AddNodes,
		AddEdges:    req.AddEdges,
		RemoveEdges: req.RemoveEdges,
	})
	if err != nil {
		writeJSON(w, updateStatusForError(err), errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// updateStatusForError maps ApplyUpdates failures to HTTP statuses: batch
// validation errors are the client's fault (400), a closing router — or one
// with no live replica to apply the batch — mirrors query shedding (503).
func updateStatusForError(err error) int {
	switch {
	case errors.Is(err, graph.ErrSelfLoop),
		errors.Is(err, graph.ErrDuplicateEdge),
		errors.Is(err, graph.ErrEdgeNotFound),
		errors.Is(err, graph.ErrInvalidNode):
		return http.StatusBadRequest
	case errors.Is(err, serve.ErrStaticGraph):
		return http.StatusConflict
	case errors.Is(err, serve.ErrClosed), errors.Is(err, router.ErrNoReplicas):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// statusForError maps a routed query's error to its HTTP status, exactly as
// hkprserver maps a direct engine's.  Status 0 means the query was canceled —
// the caller decides whether the client is gone (write nothing) or the
// cancellation deserves a 500.
func statusForError(err error) (int, string) {
	switch {
	case errors.Is(err, serve.ErrUnknownMethod):
		return http.StatusBadRequest, "method must be tea+, tea or monte-carlo"
	case errors.Is(err, serve.ErrOverloaded):
		return http.StatusServiceUnavailable, "overloaded, retry later"
	case errors.Is(err, serve.ErrClosed):
		return http.StatusServiceUnavailable, "server shutting down"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "query deadline exceeded"
	case errors.Is(err, context.Canceled):
		return 0, ""
	case errors.Is(err, core.ErrInvariantViolation):
		return http.StatusInternalServerError, err.Error()
	default:
		return http.StatusInternalServerError, err.Error()
	}
}

func writeJSON(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(payload)
}
