package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"hkpr/internal/core"
	"hkpr/internal/gen"
	"hkpr/internal/graph"
	"hkpr/internal/router"
	"hkpr/internal/serve"
)

// newTestRouterServer builds a 3-replica router over a small generated graph
// with the background health loop disabled (tests call CheckHealth
// explicitly, so health transitions are deterministic).
func newTestRouterServer(t *testing.T) (*server, *httptest.Server, int) {
	t.Helper()
	g, err := gen.PowerlawCluster(300, 3, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(g, -1,
		core.Options{T: 5, EpsRel: 0.5, FailureProb: 1e-4, Seed: 1},
		serve.Config{Workers: 2},
		router.Config{Replicas: 3, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.rt.Close() })
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return srv, ts, g.N()
}

func TestRouterHealthStatsMetrics(t *testing.T) {
	_, ts, n := newTestRouterServer(t)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}

	// Serve one query so the counters are non-trivial.
	resp, err = http.Get(ts.URL + "/cluster?seed=5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsResponse
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Nodes != n || stats.Edges <= 0 {
		t.Errorf("graph stats: %+v", stats)
	}
	if stats.Router.Replicas != 3 || stats.Router.Requests != 1 {
		t.Errorf("router stats: replicas=%d requests=%d", stats.Router.Replicas, stats.Router.Requests)
	}
	if len(stats.Router.ReplicaStatus) != 3 {
		t.Errorf("replica status: %+v", stats.Router.ReplicaStatus)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"hkpr_router_requests_total 1",
		"hkpr_router_replicas 3",
		"hkpr_router_replica_up{replica=\"2\"} 1",
		"# TYPE hkpr_router_latency_seconds histogram",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

func TestRouterClusterEndpoint(t *testing.T) {
	_, ts, _ := newTestRouterServer(t)
	get := func() clusterResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/cluster?seed=7")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var cr clusterResponse
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			t.Fatal(err)
		}
		return cr
	}
	first, second := get(), get()
	if first.Seed != 7 || first.Size == 0 || len(first.Cluster) != first.Size {
		t.Errorf("cluster response: %+v", first)
	}
	if first.Conductance <= 0 || first.Conductance > 1 {
		t.Errorf("conductance %v", first.Conductance)
	}
	// Routing is deterministic, so the repeat lands on the same replica and
	// hits its cache.
	if !second.Cached {
		t.Error("second identical query should be served from the owner's cache")
	}
	if first.Size != second.Size || first.Conductance != second.Conductance {
		t.Errorf("cached answer differs: %+v vs %+v", first, second)
	}
}

func TestRouterClusterEndpointErrors(t *testing.T) {
	_, ts, _ := newTestRouterServer(t)
	cases := []string{
		"/cluster",                     // missing seed
		"/cluster?seed=abc",            // non-numeric
		"/cluster?seed=999999",         // out of range
		"/cluster?seed=1&method=bogus", // unknown method
		"/cluster?seed=1&eps=2",        // bad eps
		"/cluster?seed=1&topk=0",       // bad topk
		"/cluster?seed=1&sweepk=-1",    // bad sweepk
	}
	for _, path := range cases {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

// TestRouterFailoverOverHTTP crashes the ring owner of a seed and checks the
// query is still answered (by a successor), then restarts the owner and
// checks the tier reports three live replicas again.
func TestRouterFailoverOverHTTP(t *testing.T) {
	srv, ts, _ := newTestRouterServer(t)
	const seed = 11

	owner := srv.rt.Owner(seed)
	if err := srv.rt.Crash(owner); err != nil {
		t.Fatal(err)
	}
	srv.rt.CheckHealth()

	resp, err := http.Get(fmt.Sprintf("%s/cluster?seed=%d", ts.URL, seed))
	if err != nil {
		t.Fatal(err)
	}
	var cr clusterResponse
	err = json.NewDecoder(resp.Body).Decode(&cr)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || cr.Size == 0 {
		t.Fatalf("query against crashed owner: status %d, %+v", resp.StatusCode, cr)
	}

	// The route view must exclude the crashed owner.
	resp, err = http.Get(fmt.Sprintf("%s/route?seed=%d", ts.URL, seed))
	if err != nil {
		t.Fatal(err)
	}
	var rr routeResponse
	err = json.NewDecoder(resp.Body).Decode(&rr)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rr.Owner != owner {
		t.Errorf("route owner %d, want %d", rr.Owner, owner)
	}
	for _, id := range rr.Candidates {
		if id == owner {
			t.Errorf("crashed owner %d still a candidate: %v", owner, rr.Candidates)
		}
	}
	if rr.Health[owner] != "down" {
		t.Errorf("owner health %q, want down", rr.Health[owner])
	}

	if err := srv.rt.Restart(owner); err != nil {
		t.Fatal(err)
	}
	srv.rt.CheckHealth()
	if got := srv.rt.Health(owner); got != router.HealthHealthy {
		t.Errorf("restarted owner health %v", got)
	}
}

// TestRouterAllDownSheds crashes every replica: /cluster must shed with a
// 503 and a whole-second Retry-After header, and /healthz must go 503.
func TestRouterAllDownSheds(t *testing.T) {
	srv, ts, _ := newTestRouterServer(t)
	for id := 0; id < srv.rt.Replicas(); id++ {
		if err := srv.rt.Crash(id); err != nil {
			t.Fatal(err)
		}
	}
	srv.rt.CheckHealth()

	resp, err := http.Get(ts.URL + "/cluster?seed=3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-down query status %d, want 503", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Errorf("Retry-After %q not a positive whole-second count", ra)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("all-down healthz status %d, want 503", resp.StatusCode)
	}
}

// TestRouterUpdateEndpoint publishes an update batch through the router and
// checks the epoch advances everywhere the stats can see.
func TestRouterUpdateEndpoint(t *testing.T) {
	_, ts, n := newTestRouterServer(t)

	body, _ := json.Marshal(updateRequest{
		AddNodes: 1,
		AddEdges: [][2]graph.NodeID{{graph.NodeID(n), 0}},
	})
	resp, err := http.Post(ts.URL+"/update", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var res serve.UpdateResult
	err = json.NewDecoder(resp.Body).Decode(&res)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || res.Epoch != 1 {
		t.Fatalf("update: status %d result %+v", resp.StatusCode, res)
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsResponse
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Router.Epoch != 1 || stats.Nodes != n+1 {
		t.Errorf("post-update stats: epoch=%d nodes=%d", stats.Router.Epoch, stats.Nodes)
	}
	for _, rs := range stats.Router.ReplicaStatus {
		if rs.GraphEpoch != 1 {
			t.Errorf("replica %d at epoch %d after update", rs.ID, rs.GraphEpoch)
		}
	}

	// A self-loop fails validation atomically on every replica.
	bad, _ := json.Marshal(updateRequest{AddEdges: [][2]graph.NodeID{{1, 1}}})
	resp, err = http.Post(ts.URL+"/update", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("self-loop update status %d, want 400", resp.StatusCode)
	}
}

func TestRouterStatusForError(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{serve.ErrUnknownMethod, http.StatusBadRequest},
		{serve.ErrOverloaded, http.StatusServiceUnavailable},
		{&serve.OverloadedError{}, http.StatusServiceUnavailable},
		{serve.ErrClosed, http.StatusServiceUnavailable},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{context.Canceled, 0},
		{core.ErrInvariantViolation, http.StatusInternalServerError},
		{errors.New("anything else"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got, _ := statusForError(tc.err); got != tc.want {
			t.Errorf("statusForError(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}
