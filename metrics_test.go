package hkpr_test

import (
	"math"
	"testing"

	"hkpr"
)

func TestComputeClusterStats(t *testing.T) {
	g, assign := sbmForAPI(t)
	comm := assign.Communities()[0]
	stats := hkpr.ComputeClusterStats(g, comm)
	if stats.Size != len(comm) {
		t.Fatalf("size %d want %d", stats.Size, len(comm))
	}
	if math.Abs(stats.Conductance-hkpr.Conductance(g, comm)) > 1e-12 {
		t.Error("stats conductance disagrees with Conductance")
	}
	if stats.InternalDensity <= 0 || stats.Separability <= 0 {
		t.Errorf("planted community should be dense and separable: %+v", stats)
	}
}

func TestTopRelated(t *testing.T) {
	g, assign := sbmForAPI(t)
	c, err := hkpr.NewClusterer(g, hkpr.Options{T: 5, FailureProb: 1e-4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	seed := hkpr.NodeID(10)
	related, err := c.TopRelated(seed, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(related) != 15 {
		t.Fatalf("got %d related nodes", len(related))
	}
	// Most of the top-related nodes should share the seed's community.
	same := 0
	for _, rn := range related {
		if assign[rn.Node] == assign[seed] {
			same++
		}
	}
	if same < 10 {
		t.Errorf("only %d/15 related nodes share the seed's community", same)
	}
	if _, err := c.TopRelated(hkpr.NodeID(g.N()+1), 5); err == nil {
		t.Error("invalid seed should error")
	}
}
