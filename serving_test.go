package hkpr_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"hkpr"
)

func TestEngineLocalCluster(t *testing.T) {
	g, assign := sbmForAPI(t)
	eng, err := hkpr.NewEngine(g, hkpr.Options{T: 5, FailureProb: 1e-4, Seed: 2}, hkpr.EngineConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	local, err := eng.LocalCluster(context.Background(), 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(local.Cluster) == 0 {
		t.Fatal("empty cluster")
	}
	truth := assign.Communities()[assign[17]]
	if f1 := hkpr.F1Score(local.Cluster, truth); f1 < 0.4 {
		t.Errorf("F1=%v too low", f1)
	}

	// Identical query again: served from cache, same answer.
	again, err := eng.LocalCluster(context.Background(), 17)
	if err != nil {
		t.Fatal(err)
	}
	if again.Conductance != local.Conductance || len(again.Cluster) != len(local.Cluster) {
		t.Error("cached answer differs")
	}
	st := eng.Stats()
	if st.CacheHits != 1 || st.Executions != 1 {
		t.Errorf("hits=%d executions=%d, want 1/1", st.CacheHits, st.Executions)
	}
}

func TestEngineEstimateAndMethods(t *testing.T) {
	g, _ := sbmForAPI(t)
	eng, err := hkpr.NewEngine(g, hkpr.Options{T: 5, FailureProb: 1e-4, Delta: 0.01, Seed: 2}, hkpr.EngineConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for _, m := range []hkpr.Method{hkpr.MethodTEAPlus, hkpr.MethodTEA, hkpr.MethodMonteCarlo} {
		res, err := eng.Estimate(context.Background(), 3, m, hkpr.Options{})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if res.SupportSize() == 0 {
			t.Fatalf("%s: empty result", m)
		}
	}
	if _, err := eng.Estimate(context.Background(), 3, hkpr.MethodExact, hkpr.Options{}); err == nil {
		t.Fatal("exact method should be rejected by the serving engine")
	}
}

func TestEngineDeadline(t *testing.T) {
	g, _ := sbmForAPI(t)
	eng, err := hkpr.NewEngine(g, hkpr.Options{T: 5, FailureProb: 1e-4, Seed: 2}, hkpr.EngineConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	// Tiny δ and hop cap make the walk phase effectively unbounded.
	_, err = eng.LocalClusterWithOptions(ctx, 5, hkpr.Options{Delta: 1e-9, C: 1e-3}, hkpr.MethodTEAPlus)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected DeadlineExceeded, got %v", err)
	}
}

func TestEngineCloseRejects(t *testing.T) {
	g, _ := sbmForAPI(t)
	eng, err := hkpr.NewEngine(g, hkpr.Options{T: 5, FailureProb: 1e-4, Seed: 2}, hkpr.EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.LocalCluster(context.Background(), 1); !errors.Is(err, hkpr.ErrEngineClosed) {
		t.Fatalf("expected ErrEngineClosed, got %v", err)
	}
}

func TestEngineWriteMetrics(t *testing.T) {
	g, _ := sbmForAPI(t)
	eng, err := hkpr.NewEngine(g, hkpr.Options{T: 5, FailureProb: 1e-4, Seed: 2}, hkpr.EngineConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.LocalCluster(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	eng.WriteMetrics(&sb)
	if !strings.Contains(sb.String(), "hkpr_serve_requests_total 1") {
		t.Errorf("metrics output missing request counter:\n%s", sb.String())
	}
}
