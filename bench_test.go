// Benchmarks that regenerate every table and figure of the paper's evaluation
// (§7) at reduced scale, plus micro-benchmarks of the core estimators.
//
// Each BenchmarkTable*/BenchmarkFig* target runs the corresponding experiment
// from internal/bench on the ScaleTest dataset stand-ins so the whole suite
// finishes in minutes; the full-size reproduction is run through
// cmd/hkprbench (see EXPERIMENTS.md).  Reported ns/op is the wall-clock cost
// of regenerating that artifact once.
package hkpr_test

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"

	"hkpr"
	"hkpr/internal/bench"
	"hkpr/internal/dataset"
)

// benchConfig is the shared reduced-size configuration for the experiment
// benchmarks.
func benchConfig(datasets ...string) bench.Config {
	return bench.Config{
		Scale:           dataset.ScaleTest,
		SeedsPerDataset: 3,
		Datasets:        datasets,
		RNGSeed:         1,
	}
}

func runExperiment(b *testing.B, id string, cfg bench.Config) {
	b.Helper()
	exp, err := bench.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := exp.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// --- one benchmark per paper table/figure -----------------------------------

func BenchmarkTable7DatasetStats(b *testing.B) {
	runExperiment(b, "table7", benchConfig())
}

func BenchmarkFig2TuneC(b *testing.B) {
	runExperiment(b, "fig2", benchConfig("dblp", "plc", "orkut"))
}

func BenchmarkFig3TEAvsTEAPlus(b *testing.B) {
	runExperiment(b, "fig3", benchConfig("dblp", "plc", "orkut"))
}

func BenchmarkFig4TimeVsConductance(b *testing.B) {
	runExperiment(b, "fig4", benchConfig("dblp", "plc"))
}

func BenchmarkFig5MemoryVsConductance(b *testing.B) {
	runExperiment(b, "fig5", benchConfig("dblp", "plc"))
}

func BenchmarkFig6NDCG(b *testing.B) {
	runExperiment(b, "fig6", benchConfig("dblp", "plc"))
}

func BenchmarkTable8GroundTruthF1(b *testing.B) {
	runExperiment(b, "table8", benchConfig("dblp"))
}

func BenchmarkFig7SubgraphDensity(b *testing.B) {
	runExperiment(b, "fig7", benchConfig("dblp", "plc"))
}

func BenchmarkFig8HeatConstantDBLP(b *testing.B) {
	runExperiment(b, "fig8", benchConfig("dblp"))
}

func BenchmarkFig9HeatConstantPLC(b *testing.B) {
	runExperiment(b, "fig9", benchConfig("plc"))
}

func BenchmarkAblationTEAPlus(b *testing.B) {
	runExperiment(b, "ablation", benchConfig("plc"))
}

// --- micro-benchmarks of individual queries ----------------------------------

func benchGraph(b *testing.B) *hkpr.Graph {
	b.Helper()
	g, err := hkpr.GeneratePLC(20000, 5, 0.5, 13)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchOpts(g *hkpr.Graph, seed uint64) hkpr.Options {
	return hkpr.Options{T: 5, EpsRel: 0.5, Delta: 1 / float64(g.N()), FailureProb: 1e-6, Seed: seed}
}

func BenchmarkQueryTEAPlus(b *testing.B) {
	g := benchGraph(b)
	c, err := hkpr.NewClusterer(g, benchOpts(g, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.LocalCluster(hkpr.NodeID(i % g.N())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryTEA(b *testing.B) {
	g := benchGraph(b)
	c, err := hkpr.NewClustererWithMethod(g, benchOpts(g, 1), hkpr.MethodTEA)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.LocalCluster(hkpr.NodeID(i % g.N())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryMonteCarlo(b *testing.B) {
	g := benchGraph(b)
	// Monte-Carlo at δ=1/n is the expensive baseline; loosen δ slightly so a
	// single iteration stays in benchmark-friendly territory while keeping
	// the relative ordering visible.
	opts := benchOpts(g, 1)
	opts.Delta *= 4
	c, err := hkpr.NewClustererWithMethod(g, opts, hkpr.MethodMonteCarlo)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.LocalCluster(hkpr.NodeID(i % g.N())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryHKRelax(b *testing.B) {
	g := benchGraph(b)
	opts := benchOpts(g, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := hkpr.EstimateHKPR(g, hkpr.NodeID(i%g.N()), hkpr.MethodHKRelax, opts)
		if err != nil {
			b.Fatal(err)
		}
		hkpr.Sweep(g, res.Scores)
	}
}

func BenchmarkQueryExactPowerMethod(b *testing.B) {
	g := benchGraph(b)
	opts := benchOpts(g, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hkpr.EstimateHKPR(g, hkpr.NodeID(i%g.N()), hkpr.MethodExact, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- serving-path benchmarks -------------------------------------------------
//
// These anchor the perf trajectory of the internal/serve engine: the cached
// path must stay orders of magnitude faster than the cold path, and adding
// workers must increase throughput on concurrent load.

func benchEngine(b *testing.B, cfg hkpr.EngineConfig) *hkpr.Engine {
	b.Helper()
	g := benchGraph(b)
	eng, err := hkpr.NewEngine(g, benchOpts(g, 1), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { eng.Close() })
	return eng
}

// BenchmarkServeColdQuery measures the full scheduler+estimator+sweep path
// with the cache bypassed: every iteration executes the core estimator.
func BenchmarkServeColdQuery(b *testing.B) {
	eng := benchEngine(b, hkpr.EngineConfig{Workers: 1, QueueDepth: 4})
	n := eng.Graph().N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := eng.Do(context.Background(), hkpr.ServeRequest{
			Seed: hkpr.NodeID(i % n), Sweep: true, NoCache: true,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeCachedQuery measures the steady-state hot path: after the
// first execution every identical query is a cache hit.
func BenchmarkServeCachedQuery(b *testing.B) {
	eng := benchEngine(b, hkpr.EngineConfig{Workers: 1, QueueDepth: 4})
	req := hkpr.ServeRequest{Seed: 7, Sweep: true}
	if _, err := eng.Do(context.Background(), req); err != nil {
		b.Fatal(err) // warm the cache
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := eng.Do(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if i > 0 && !resp.Cached {
			b.Fatal("expected a cache hit")
		}
	}
}

// benchServeParallel drives concurrent uncached queries over a fixed seed
// set through an engine with the given worker count; compare Workers=1
// against Workers=GOMAXPROCS for the scheduler's scaling.
func benchServeParallel(b *testing.B, workers int) {
	eng := benchEngine(b, hkpr.EngineConfig{
		Workers: workers, QueueDepth: 1024, CacheBytes: -1,
	})
	n := eng.Graph().N()
	var next atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := next.Add(1)
			_, err := eng.Do(context.Background(), hkpr.ServeRequest{
				Seed: hkpr.NodeID(i % int64(n)), NoCache: true,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchServeWalkHeavy measures cold-query latency of a walk-dominated TEA
// query (loose rmax leaves ~all mass to the Monte-Carlo walk stage) at the
// given intra-query parallelism.  Comparing the P=1 and P=4 variants shows
// the sharded walk stage's latency win on multi-core hardware; results are
// bit-identical across the variants, so this is purely a latency knob.
func benchServeWalkHeavy(b *testing.B, parallelism int) {
	g, err := hkpr.GeneratePLC(50000, 5, 0.5, 13)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := hkpr.NewEngine(g, benchOpts(g, 1), hkpr.EngineConfig{
		Workers: 1, QueueDepth: 4, Parallelism: parallelism, CPUTokens: parallelism,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { eng.Close() })
	n := g.N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := eng.Do(context.Background(), hkpr.ServeRequest{
			Seed: hkpr.NodeID(i % n), Method: string(hkpr.MethodTEA), NoCache: true,
			Opts: hkpr.Options{RmaxScale: 20},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && resp.Result.Stats.WalkShards < 2 {
			b.Fatalf("walk stage not sharded (%d shards); benchmark is vacuous", resp.Result.Stats.WalkShards)
		}
	}
}

func BenchmarkServeColdWalkHeavyP1(b *testing.B) { benchServeWalkHeavy(b, 1) }

func BenchmarkServeColdWalkHeavyP4(b *testing.B) { benchServeWalkHeavy(b, 4) }

// benchServePushHeavy measures cold-query latency of a push-dominated TEA
// query (the default tight rmax keeps nearly all the work in HK-Push's
// per-hop frontier scans) at the given intra-query parallelism.  Comparing
// the P=1 and P=4 variants anchors the chunked push phase's latency win on
// multi-core hardware; results are bit-identical across the variants, so —
// like the walk-heavy pair above — this is purely a latency knob.
func benchServePushHeavy(b *testing.B, parallelism int) {
	g, err := hkpr.GeneratePLC(50000, 5, 0.5, 13)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := hkpr.NewEngine(g, benchOpts(g, 1), hkpr.EngineConfig{
		Workers: 1, QueueDepth: 4, Parallelism: parallelism, CPUTokens: parallelism,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { eng.Close() })
	n := g.N()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := eng.Do(context.Background(), hkpr.ServeRequest{
			Seed: hkpr.NodeID(i % n), Method: string(hkpr.MethodTEA), NoCache: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && resp.Result.Stats.PushChunks <= int64(resp.Result.Stats.MaxHop) {
			b.Fatalf("push phase not chunked (%d chunks over %d hops); benchmark is vacuous",
				resp.Result.Stats.PushChunks, resp.Result.Stats.MaxHop)
		}
	}
}

func BenchmarkServeColdPushHeavyP1(b *testing.B) { benchServePushHeavy(b, 1) }

func BenchmarkServeColdPushHeavyP4(b *testing.B) { benchServePushHeavy(b, 4) }

func BenchmarkServeThroughput1Worker(b *testing.B) { benchServeParallel(b, 1) }

func BenchmarkServeThroughputMaxWorkers(b *testing.B) {
	benchServeParallel(b, runtime.GOMAXPROCS(0))
}

func BenchmarkSweepOnly(b *testing.B) {
	g := benchGraph(b)
	res, err := hkpr.EstimateHKPR(g, 7, hkpr.MethodTEAPlus, benchOpts(g, 1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hkpr.Sweep(g, res.Scores)
	}
}
