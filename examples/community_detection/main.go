// Community detection: use TEA+ local clustering to recover planted
// ground-truth communities and score the result with F1, reproducing the
// methodology of the paper's Table 8 on a synthetic graph.
//
// Run with:
//
//	go run ./examples/community_detection
package main

import (
	"fmt"
	"log"
	"time"

	"hkpr"
)

func main() {
	// A stochastic block model with 20 planted communities of 150 nodes.
	g, truth, err := hkpr.GenerateSBM(20, 150, 12, 2, 7)
	if err != nil {
		log.Fatal(err)
	}
	g, orig := hkpr.LargestComponent(g)
	remapped := make(hkpr.CommunityAssignment, g.N())
	for newID, oldID := range orig {
		remapped[newID] = truth[oldID]
	}
	communities := remapped.Communities()
	fmt.Printf("graph: %d nodes, %d edges, %d planted communities\n", g.N(), g.M(), len(communities))

	clusterer, err := hkpr.NewClusterer(g, hkpr.Options{T: 5, EpsRel: 0.5, FailureProb: 1e-6, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	// Take one seed from each of the first ten communities and measure how
	// well the local cluster recovers the seed's community.  All ten queries
	// run as one batched call: the seeds share a single multi-source graph
	// pass (LocalClusterBatch → EstimateMany), and each item is bit-identical
	// to a standalone LocalCluster call for its seed.
	nq := 10
	if nq > len(communities) {
		nq = len(communities)
	}
	seeds := make([]hkpr.NodeID, nq)
	for c := 0; c < nq; c++ {
		seeds[c] = communities[c][0]
	}
	start := time.Now()
	batch := clusterer.LocalClusterBatch(seeds, 0)
	elapsed := time.Since(start)

	totalF1 := 0.0
	queries := 0
	for c, item := range batch {
		if item.Err != nil {
			log.Fatal(item.Err)
		}
		local := item.Cluster
		f1 := hkpr.F1Score(local.Cluster, communities[c])
		totalF1 += f1
		queries++
		fmt.Printf("community %2d: seed %-6d cluster %4d nodes, conductance %.4f, F1 %.3f\n",
			c, item.Seed, len(local.Cluster), local.Conductance, f1)
	}

	fmt.Printf("\naverage F1 over %d queries: %.3f (total time %v, %.1f ms/query)\n",
		queries, totalF1/float64(queries), elapsed,
		float64(elapsed.Microseconds())/1000/float64(queries))
}
