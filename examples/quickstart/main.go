// Quickstart: generate a small graph, run one TEA+ local clustering query and
// print the cluster.  This is the five-minute tour of the public API.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hkpr"
)

func main() {
	// 1. Get a graph.  Real applications load an edge list with
	//    hkpr.LoadEdgeListFile; here we generate a power-law-cluster graph
	//    like the paper's PLC dataset.
	g, err := hkpr.GeneratePLC(5000, 5, 0.5, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges, average degree %.1f\n", g.N(), g.M(), g.AverageDegree())

	// 2. Build a Clusterer.  It caches the per-graph setup (heat-kernel
	//    weights, adjusted failure probability) so repeated queries are cheap.
	clusterer, err := hkpr.NewClusterer(g, hkpr.Options{
		T:           5,    // heat constant
		EpsRel:      0.5,  // relative error threshold εr
		FailureProb: 1e-6, // pf
		Seed:        1,    // RNG seed for reproducibility
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Ask for the local cluster of a seed node.  Under the hood this runs
	//    TEA+ (Algorithm 5 of the paper) followed by a sweep cut.
	seed := hkpr.NodeID(123)
	local, err := clusterer.LocalCluster(seed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("seed %d: cluster of %d nodes with conductance %.4f\n",
		seed, len(local.Cluster), local.Conductance)
	fmt.Printf("work: %d push operations, %d random walks\n",
		local.HKPR.Stats.PushOperations, local.HKPR.Stats.RandomWalks)

	// 4. The HKPR estimates themselves are available too.
	top := local.Sweep.Order
	if len(top) > 5 {
		top = top[:5]
	}
	fmt.Println("top nodes by normalized HKPR:")
	for _, v := range top {
		fmt.Printf("  node %-6d  ρ̂/d = %.6f\n", v,
			local.HKPR.NormalizedEstimate(v, g.Degree(v)))
	}
}
