// Ranking accuracy: compare the normalized-HKPR ranking produced by each
// estimator against the exact ranking from the power method, using NDCG —
// the methodology of the paper's §7.5 (Figure 6).
//
// Run with:
//
//	go run ./examples/ranking_accuracy
package main

import (
	"fmt"
	"log"
	"time"

	"hkpr"
)

func main() {
	g, err := hkpr.GeneratePLC(8000, 5, 0.5, 21)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges\n", g.N(), g.M())

	seed := hkpr.NodeID(100)
	opts := hkpr.Options{T: 5, EpsRel: 0.5, Delta: 1 / float64(g.N()), FailureProb: 1e-6, Seed: 11}

	// Ground truth: exact normalized HKPR by the power method.
	exact, err := hkpr.EstimateHKPR(g, seed, hkpr.MethodExact, opts)
	if err != nil {
		log.Fatal(err)
	}
	truth := make(map[hkpr.NodeID]float64, exact.SupportSize())
	for _, e := range exact.Scores {
		truth[e.Node] = e.Score / float64(g.Degree(e.Node))
	}

	fmt.Printf("\n%-14s %12s %10s %12s\n", "method", "time (ms)", "NDCG@100", "support")
	for _, method := range []hkpr.Method{
		hkpr.MethodTEAPlus, hkpr.MethodTEA, hkpr.MethodMonteCarlo,
		hkpr.MethodHKRelax, hkpr.MethodClusterHKPR,
	} {
		start := time.Now()
		res, err := hkpr.EstimateHKPR(g, seed, method, opts)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		sweep := hkpr.Sweep(g, res.Scores)
		ndcg := hkpr.NDCG(sweep.Order, truth, 100)
		fmt.Printf("%-14s %12.2f %10.4f %12d\n",
			method, float64(elapsed.Microseconds())/1000, ndcg, res.SupportSize())
	}
	fmt.Println("\nexpected shape (paper §7.5): TEA+ cheapest at a given NDCG; Monte-Carlo and ClusterHKPR slowest")
}
