// Interactive exploration: the paper's motivating scenario (§1).  Bob starts
// from one account in a large social network, asks for its local cluster,
// then hops to an interesting member of that cluster and repeats — and every
// hop must come back fast enough to feel interactive.
//
// This example builds a heavy-tailed RMAT social graph (the stand-in for the
// paper's Twitter snapshot), performs a chain of local clustering queries
// with TEA+, and reports the per-hop latency.  For contrast it also runs the
// first hop with the Monte-Carlo estimator, which is the kind of method the
// paper shows is too slow for this use.
//
// Run with:
//
//	go run ./examples/interactive_exploration
package main

import (
	"fmt"
	"log"
	"time"

	"hkpr"
)

func main() {
	// A 2^15-node heavy-tailed graph: our scaled-down "Twitter".
	g, err := hkpr.GenerateRMAT(15, 20, 99)
	if err != nil {
		log.Fatal(err)
	}
	g, _ = hkpr.LargestComponent(g)
	fmt.Printf("social graph: %d nodes, %d edges, max degree %d\n", g.N(), g.M(), g.MaxDegree())

	clusterer, err := hkpr.NewClusterer(g, hkpr.Options{T: 5, EpsRel: 0.5, FailureProb: 1e-6, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}

	// Start from a high-degree node ("Elon"), then keep exploring: at each
	// step, move to the highest-HKPR cluster member we have not visited yet.
	seed := highestDegreeNode(g)
	visited := map[hkpr.NodeID]bool{seed: true}

	fmt.Println("\ninteractive exploration with TEA+:")
	for hop := 1; hop <= 5; hop++ {
		start := time.Now()
		local, err := clusterer.LocalCluster(seed)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("  hop %d: seed %-7d cluster %5d nodes  conductance %.4f  latency %6.1f ms\n",
			hop, seed, len(local.Cluster), local.Conductance,
			float64(elapsed.Microseconds())/1000)

		next := seed
		for _, v := range local.Sweep.Order {
			if !visited[v] {
				next = v
				break
			}
		}
		if next == seed {
			break
		}
		visited[next] = true
		seed = next
	}

	// The same first query with the plain Monte-Carlo estimator, to show why
	// the paper's optimization matters for interactivity.
	mc, err := hkpr.NewClustererWithMethod(g,
		hkpr.Options{T: 5, EpsRel: 0.5, FailureProb: 1e-6, Seed: 2}, hkpr.MethodMonteCarlo)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if _, err := mc.LocalCluster(highestDegreeNode(g)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsame query with Monte-Carlo: %.1f ms (this is the gap TEA+ closes)\n",
		float64(time.Since(start).Microseconds())/1000)
}

func highestDegreeNode(g *hkpr.Graph) hkpr.NodeID {
	var best hkpr.NodeID
	var bestDeg int32 = -1
	for v := hkpr.NodeID(0); int(v) < g.N(); v++ {
		if d := g.Degree(v); d > bestDeg {
			bestDeg = d
			best = v
		}
	}
	return best
}
