package hkpr

import (
	"context"
	"fmt"
	"io"
	"time"

	"hkpr/internal/core"
	"hkpr/internal/serve"
	"hkpr/internal/trace"
)

// Serving-layer re-exports.  The concrete implementations live in
// internal/serve; the aliases make the types nameable by callers.
type (
	// EngineConfig tunes an Engine: worker count, admission-queue depth,
	// result-cache byte budget, default per-query timeout, the cancellation
	// check interval, the per-query push/walk parallelism (static default or
	// load-adaptive via Adaptive), and the shared CPU-token budget that keeps
	// workers plus push chunks plus walk shards from oversubscribing cores.
	EngineConfig = serve.Config
	// ServeRequest is a raw serving-layer query (seed, method, per-query
	// option overrides, sweep and cache directives).
	ServeRequest = serve.Request
	// ServeResponse is a raw serving-layer answer.  Its Result and Sweep may
	// be shared with the engine's cache and must be treated as read-only.
	ServeResponse = serve.Response
	// TraceRecord is one completed query's immutable per-stage trace: stage
	// spans (queue wait, cache lookup, workspace, push, walk, merge, sweep,
	// render), the resolved parallelism, the cache outcome, the estimator's
	// execution statistics and the query's invariant-check counters.  Records
	// are returned by Engine.Traces and on ServeResponse.Trace when a request
	// sets Trace; they marshal directly to JSON.
	TraceRecord = trace.Record
	// UpdateResult summarizes one update batch published through
	// Engine.ApplyUpdates: the new epoch, the accepted batch size, the
	// invalidation neighborhood and the number of cache entries dropped.
	UpdateResult = serve.UpdateResult
	// PressureConfig tunes the engine's overload controller: tier thresholds
	// on smoothed queue occupancy and shed rate, per-tier degradation
	// policies, the stale-arena fraction of the cache budget and the
	// Retry-After clamp.  Its zero value enables the controller with
	// production defaults; set Disabled to opt out entirely.
	PressureConfig = serve.PressureConfig
	// TierPolicy is one pressure tier's degradation policy: a walk-budget
	// scale, parallelism and sweep-k caps, and whether radius-invalidated
	// stale results may be served while revalidating.
	TierPolicy = serve.TierPolicy
	// PressureLevel is the controller's current tier (nominal, elevated,
	// overloaded, critical).
	PressureLevel = serve.PressureLevel
	// EffectiveOptions echoes the reduced budgets a degraded (clamped)
	// response was actually computed with.
	EffectiveOptions = serve.EffectiveOptions
	// OverloadedError is the shed error carrying a Retry-After hint derived
	// from the engine's drain estimate; errors.Is(err, ErrOverloaded) still
	// matches it.
	OverloadedError = serve.OverloadedError
)

// Degraded-response labels: a ServeResponse whose Degraded field is non-empty
// was served in a reduced mode under overload pressure.
const (
	// DegradedStale marks a response served from the stale arena (a
	// radius-invalidated cached result, at its pre-update Epoch) while a
	// background revalidation recomputes.
	DegradedStale = serve.DegradedStale
	// DegradedClamped marks a response computed under a pressure tier's
	// reduced walk/sweep budgets; Effective echoes the budgets used.
	DegradedClamped = serve.DegradedClamped
)

// Serving-layer errors.
var (
	// ErrOverloaded reports that the engine's admission queue was full and
	// the query was shed; callers should back off and retry.
	ErrOverloaded = serve.ErrOverloaded
	// ErrEngineClosed reports a query issued against a closed Engine.
	ErrEngineClosed = serve.ErrClosed
	// ErrUnknownMethod reports a serving request whose method is not one of
	// tea+, tea or monte-carlo.
	ErrUnknownMethod = serve.ErrUnknownMethod
	// ErrStaticGraph reports an ApplyUpdates call on an engine built over a
	// plain immutable graph rather than a Dynamic.
	ErrStaticGraph = serve.ErrStaticGraph
	// ErrInvariantViolation reports that a query's inline self-verification
	// (mass conservation, score non-negativity, total-mass bounds, the
	// paper's Inequality 11) failed.  Queries only fail with it when
	// EngineConfig.StrictInvariants is set; otherwise violations are counted
	// in the serving metrics without affecting results.
	ErrInvariantViolation = core.ErrInvariantViolation
)

// RetryAfterSeconds converts a drain estimate (OverloadedError.RetryAfter)
// into the whole-seconds value an HTTP Retry-After header carries: rounded up
// and floored at 1 second, so a light-load estimate of a few milliseconds
// never renders as "Retry-After: 0" (which clients read as "retry now").
func RetryAfterSeconds(d time.Duration) int64 { return serve.RetryAfterSeconds(d) }

// Engine is the concurrent query-serving subsystem: a worker-pool scheduler
// with bounded admission, a byte-budgeted LRU result cache with request
// coalescing, per-query cancellation threaded into the core estimators, and
// a metrics core.  Create one per loaded graph with NewEngine; it amortizes
// the same per-graph state as a Clusterer and is safe for concurrent use by
// any number of goroutines.
type Engine struct {
	eng *serve.Engine
}

// NewEngine builds a serving engine over src: a *Graph for a static
// deployment, or a *Dynamic (see NewDynamic) to enable the live-update path
// through Engine.ApplyUpdates.  Options.Delta defaults to 1/N() if zero, as
// in NewClusterer; cfg's zero value gives GOMAXPROCS workers, a 4×-deep
// admission queue and a 64 MiB result cache.
func NewEngine(src GraphSource, opts Options, cfg EngineConfig) (*Engine, error) {
	if opts.Delta == 0 {
		if n := src.Snapshot().N(); n > 1 {
			opts.Delta = 1 / float64(n)
		} else {
			return nil, fmt.Errorf("hkpr: graph too small for local clustering")
		}
	}
	est, err := core.NewEstimator(src, opts)
	if err != nil {
		return nil, err
	}
	eng, err := serve.New(est, cfg)
	if err != nil {
		return nil, err
	}
	return &Engine{eng: eng}, nil
}

// Graph returns the current epoch's immutable snapshot of the graph the
// engine serves.  The view is safe to read concurrently with live updates;
// call again after ApplyUpdates to observe the new epoch.
func (e *Engine) Graph() *GraphSnapshot { return e.eng.Graph() }

// ApplyUpdates validates and publishes one graph update batch as a new epoch
// and invalidates exactly the cached results whose seed lies within
// EngineConfig.InvalidateRadius hops of an updated edge.  The batch is
// all-or-nothing; engines built over a static *Graph fail with
// ErrStaticGraph.  In-flight queries keep reading the epoch they pinned at
// admission and are never torn.
func (e *Engine) ApplyUpdates(batch UpdateBatch) (UpdateResult, error) {
	return e.eng.ApplyUpdates(batch)
}

// Options returns the engine's resolved default estimation options.
func (e *Engine) Options() Options { return e.eng.Options() }

// Close stops the workers, aborts in-flight queries and fails queued ones
// with ErrEngineClosed.  It is idempotent.
func (e *Engine) Close() error { return e.eng.Close() }

// Drain stops admission (new queries fail with ErrEngineClosed) but lets
// every already-admitted query finish, waiting up to timeout before forcing
// Close.  A nil return means no admitted query was abandoned mid-execution.
func (e *Engine) Drain(timeout time.Duration) error { return e.eng.Drain(timeout) }

// Pressure returns the overload controller's current tier.
func (e *Engine) Pressure() PressureLevel { return e.eng.PressureLevel() }

// Do issues a raw serving-layer request.  It blocks until the query
// completes, is shed (ErrOverloaded), or ctx is done.
func (e *Engine) Do(ctx context.Context, req ServeRequest) (*ServeResponse, error) {
	return e.eng.Do(ctx, req)
}

// LocalCluster answers one local clustering query (TEA+ then sweep) through
// the scheduler and cache.
func (e *Engine) LocalCluster(ctx context.Context, seed NodeID) (*LocalCluster, error) {
	return e.LocalClusterWithOptions(ctx, seed, Options{}, MethodTEAPlus)
}

// LocalClusterWithOptions is LocalCluster with per-query option overrides and
// an explicit method (tea+, tea or monte-carlo).
func (e *Engine) LocalClusterWithOptions(ctx context.Context, seed NodeID, query Options, method Method) (*LocalCluster, error) {
	resp, err := e.Do(ctx, ServeRequest{Seed: seed, Method: string(method), Opts: query, Sweep: true})
	if err != nil {
		return nil, err
	}
	return localClusterFromResponse(resp), nil
}

// Estimate computes the approximate HKPR vector for seed through the
// scheduler and cache, without the sweep.  The returned Result may be shared
// with the cache; treat it as read-only.
func (e *Engine) Estimate(ctx context.Context, seed NodeID, method Method, query Options) (*Result, error) {
	resp, err := e.Do(ctx, ServeRequest{Seed: seed, Method: string(method), Opts: query})
	if err != nil {
		return nil, err
	}
	return resp.Result, nil
}

// Stats snapshots the engine's serving metrics.
func (e *Engine) Stats() ServeStats { return e.eng.Snapshot() }

// Traces returns the most recently completed query traces, newest first, or
// nil when EngineConfig.TraceBuffer left the trace ring disabled.  The
// records are immutable and safe to retain.
func (e *Engine) Traces() []*TraceRecord { return e.eng.TraceRecords() }

// WriteMetrics writes the serving metrics in Prometheus text format.
func (e *Engine) WriteMetrics(w io.Writer) { e.eng.WritePrometheus(w) }

// localClusterFromResponse adapts a serving-layer response (which always
// carries a sweep here) to the public LocalCluster shape.
func localClusterFromResponse(resp *ServeResponse) *LocalCluster {
	return &LocalCluster{
		Seed:        resp.Seed,
		Cluster:     resp.Sweep.Cluster,
		Conductance: resp.Sweep.Conductance,
		HKPR:        resp.Result,
		Sweep:       *resp.Sweep,
	}
}
