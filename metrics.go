package hkpr

import (
	"hkpr/internal/cluster"
	"hkpr/internal/serve"
)

// ServeStats is a point-in-time snapshot of an Engine's serving metrics:
// request/execution/error counters, cache hits and misses, coalesced and
// shed queries, queue depth and capacity, and a latency-histogram summary
// (mean, p50, p90, p99).  Obtain one with Engine.Stats; the Prometheus text
// form of the same counters is written by Engine.WriteMetrics.
type ServeStats = serve.Snapshot

// ClusterStats summarizes a cluster's structural quality (size, volume, cut,
// internal edges, conductance, internal density, normalized cut,
// separability).
type ClusterStats = cluster.Stats

// ComputeClusterStats measures the node set in g.
func ComputeClusterStats(g *Graph, set []NodeID) ClusterStats {
	return cluster.ComputeStats(g, set)
}

// TopRelated returns the k nodes most related to the seed under heat kernel
// PageRank — the interactive-exploration primitive of the paper's §1 ("who
// else is in Elon's neighbourhood"): it runs the clusterer's estimator for
// the seed and returns the top-k nodes by normalized HKPR.
func (c *Clusterer) TopRelated(seed NodeID, k int) ([]RankedNode, error) {
	res, err := c.Estimate(seed, Options{})
	if err != nil {
		return nil, err
	}
	return cluster.TopKNormalized(c.g, res.Scores, k), nil
}
