module hkpr

go 1.24
